//! Combinational circuit representation.

use std::fmt;

/// A net (wire) in a [`Circuit`]: either a primary input or the output
/// of a gate, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// The dense net index (inputs first, then gate outputs in
    /// topological order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A logic gate. Fan-in signals must precede the gate topologically
/// (enforced by the [`Circuit`] builder methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Logical AND of two signals.
    And(Signal, Signal),
    /// Logical OR.
    Or(Signal, Signal),
    /// Exclusive OR.
    Xor(Signal, Signal),
    /// Negated AND.
    Nand(Signal, Signal),
    /// Negated OR.
    Nor(Signal, Signal),
    /// Equivalence (negated XOR).
    Xnor(Signal, Signal),
    /// Inverter.
    Not(Signal),
    /// Buffer (identity); useful for fault injection sites.
    Buf(Signal),
    /// Constant false.
    False,
    /// Constant true.
    True,
}

impl Gate {
    /// The fan-in signals of the gate.
    #[must_use]
    pub fn fanin(&self) -> Vec<Signal> {
        match *self {
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => vec![a, b],
            Gate::Not(a) | Gate::Buf(a) => vec![a],
            Gate::False | Gate::True => vec![],
        }
    }

    /// Evaluates the gate on concrete fan-in values.
    #[must_use]
    pub fn eval(&self, value: impl Fn(Signal) -> bool) -> bool {
        match *self {
            Gate::And(a, b) => value(a) && value(b),
            Gate::Or(a, b) => value(a) || value(b),
            Gate::Xor(a, b) => value(a) ^ value(b),
            Gate::Nand(a, b) => !(value(a) && value(b)),
            Gate::Nor(a, b) => !(value(a) || value(b)),
            Gate::Xnor(a, b) => !(value(a) ^ value(b)),
            Gate::Not(a) => !value(a),
            Gate::Buf(a) => value(a),
            Gate::False => false,
            Gate::True => true,
        }
    }
}

/// A combinational gate-level circuit.
///
/// Nets are dense: indices `0..num_inputs` are the primary inputs,
/// index `num_inputs + g` is the output of gate `g`. Gates reference
/// only earlier nets, so the representation is topologically sorted by
/// construction.
///
/// # Examples
///
/// ```
/// use coremax_circuits::Circuit;
/// let mut c = Circuit::new(2);
/// let (a, b) = (c.input(0), c.input(1));
/// let sum = c.xor(a, b);
/// c.mark_output(sum);
/// assert_eq!(c.eval(&[true, false]), vec![true]);
/// assert_eq!(c.eval(&[true, true]), vec![false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<Signal>,
}

impl Circuit {
    /// Creates a circuit with `num_inputs` primary inputs and no gates.
    #[must_use]
    pub fn new(num_inputs: usize) -> Self {
        Circuit {
            num_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The `i`-th primary input signal.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    #[must_use]
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs, "input index out of range");
        Signal(i as u32)
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total number of nets (inputs + gates).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// The gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The declared output signals.
    #[must_use]
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Returns the gate driving `signal`, or `None` for primary inputs.
    #[must_use]
    pub fn driver(&self, signal: Signal) -> Option<&Gate> {
        signal
            .index()
            .checked_sub(self.num_inputs)
            .map(|g| &self.gates[g])
    }

    /// Appends a gate, returning its output signal.
    ///
    /// # Panics
    ///
    /// Panics if a fan-in signal does not exist yet.
    pub fn add_gate(&mut self, gate: Gate) -> Signal {
        for s in gate.fanin() {
            assert!(
                s.index() < self.num_nets(),
                "gate fan-in references a later net"
            );
        }
        self.gates.push(gate);
        Signal((self.num_nets() - 1) as u32)
    }

    /// Convenience: AND gate.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::And(a, b))
    }

    /// Convenience: OR gate.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::Or(a, b))
    }

    /// Convenience: XOR gate.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::Xor(a, b))
    }

    /// Convenience: NAND gate.
    pub fn nand(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::Nand(a, b))
    }

    /// Convenience: NOR gate.
    pub fn nor(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::Nor(a, b))
    }

    /// Convenience: XNOR gate.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_gate(Gate::Xnor(a, b))
    }

    /// Convenience: inverter.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.add_gate(Gate::Not(a))
    }

    /// Convenience: buffer.
    pub fn buf(&mut self, a: Signal) -> Signal {
        self.add_gate(Gate::Buf(a))
    }

    /// Convenience: constant false net.
    pub fn constant_false(&mut self) -> Signal {
        self.add_gate(Gate::False)
    }

    /// Convenience: constant true net.
    pub fn constant_true(&mut self) -> Signal {
        self.add_gate(Gate::True)
    }

    /// Declares `signal` a primary output.
    pub fn mark_output(&mut self, signal: Signal) {
        assert!(signal.index() < self.num_nets(), "unknown signal");
        self.outputs.push(signal);
    }

    /// Simulates the circuit on concrete inputs, returning the output
    /// values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let nets = self.eval_nets(inputs);
        self.outputs.iter().map(|&o| nets[o.index()]).collect()
    }

    /// Simulates the circuit, returning the value of every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    #[must_use]
    pub fn eval_nets(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "wrong input width");
        let mut values = Vec::with_capacity(self.num_nets());
        values.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = gate.eval(|s| values[s.index()]);
            values.push(v);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        let mut c = Circuit::new(3);
        let (a, b, cin) = (c.input(0), c.input(1), c.input(2));
        let axb = c.xor(a, b);
        let sum = c.xor(axb, cin);
        let ab = c.and(a, b);
        let axb_cin = c.and(axb, cin);
        let cout = c.or(ab, axb_cin);
        c.mark_output(sum);
        c.mark_output(cout);
        for bits in 0..8u32 {
            let inputs = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let total = inputs.iter().filter(|&&x| x).count();
            let out = c.eval(&inputs);
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn all_gate_types_eval() {
        let mut c = Circuit::new(2);
        let (a, b) = (c.input(0), c.input(1));
        let nets = [
            c.and(a, b),
            c.or(a, b),
            c.xor(a, b),
            c.nand(a, b),
            c.nor(a, b),
            c.xnor(a, b),
            c.not(a),
            c.buf(a),
            c.constant_false(),
            c.constant_true(),
        ];
        for n in nets {
            c.mark_output(n);
        }
        let out = c.eval(&[true, false]);
        assert_eq!(
            out,
            vec![false, true, true, true, false, false, false, true, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "later net")]
    fn forward_reference_rejected() {
        let mut c = Circuit::new(1);
        let _ = c.add_gate(Gate::Not(Signal(5)));
    }

    #[test]
    #[should_panic(expected = "wrong input width")]
    fn eval_checks_width() {
        let c = Circuit::new(2);
        let _ = c.eval(&[true]);
    }

    #[test]
    fn driver_lookup() {
        let mut c = Circuit::new(1);
        let a = c.input(0);
        let n = c.not(a);
        assert!(c.driver(a).is_none());
        assert_eq!(c.driver(n), Some(&Gate::Not(a)));
    }

    #[test]
    fn net_counting() {
        let mut c = Circuit::new(3);
        assert_eq!(c.num_nets(), 3);
        let a = c.input(0);
        c.buf(a);
        assert_eq!(c.num_nets(), 4);
        assert_eq!(c.num_gates(), 1);
    }
}
