//! Gate-level circuit substrate for generating EDA benchmark instances.
//!
//! The paper evaluates msu4 on unsatisfiable industrial CNF from model
//! checking, equivalence checking, automatic test-pattern generation
//! (ATPG) and design debugging. Those archives are not redistributable,
//! so this crate rebuilds the *generators*: a small combinational /
//! sequential circuit representation with
//!
//! - structural builders (adders, multipliers, comparators, parity
//!   trees, random netlists) in [`builders`],
//! - equivalence-preserving gate rewrites in [`transform`] (to obtain
//!   structurally different but functionally identical netlists),
//! - Tseitin CNF encoding with clause→gate provenance in [`tseitin`],
//! - miter construction for equivalence checking in [`miter`],
//! - sequential elements and bounded-model-checking unrolling in
//!   [`seq`],
//! - stuck-at-fault ATPG instance generation in [`atpg`],
//! - fault-injected **design debugging** MaxSAT instances (Safarpour et
//!   al., FMCAD'07 — the paper's motivating application) in [`debug`].
//!
//! # Examples
//!
//! Prove two structurally different adders equivalent:
//!
//! ```
//! use coremax_circuits::{builders, miter, transform, tseitin};
//! use coremax_sat::{Solver, SolveOutcome};
//!
//! let a = builders::ripple_carry_adder(4);
//! let b = transform::rewrite_nand(&a);
//! let m = miter::build_miter(&a, &b).expect("same interface");
//! let enc = tseitin::encode(&m);
//! let mut solver = Solver::new();
//! solver.add_formula(&enc.formula);
//! // Force the miter output: a difference would make this SAT.
//! solver.add_clause([enc.output_lits[0]]);
//! assert_eq!(solver.solve(), SolveOutcome::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atpg;
pub mod builders;
mod circuit;
pub mod debug;
pub mod miter;
pub mod seq;
pub mod transform;
pub mod tseitin;

pub use circuit::{Circuit, Gate, Signal};
