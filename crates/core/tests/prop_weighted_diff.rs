//! Differential weighted-oracle harness.
//!
//! Small random weighted instances — skewed, uniform and power-of-two
//! weight distributions from the shared `coremax_instances` generator —
//! are solved by exhaustive enumeration and by every weighted path in
//! the crate: [`Wmsu1`], [`Stratified<Msu3>`], [`Stratified<Msu4>`],
//! [`WeightedByReplication<Msu1>`] and the maxsatz-style
//! [`BranchBound`], each both bare and wrapped in [`Preprocessed`].
//! All runs must agree with the oracle's optimal cost, and every model
//! must pass [`verify_solution`] against the original instance.
//!
//! The suite additionally closes the serialisation loop: parse → solve
//! → serialize → reparse → solve must reproduce the optimum in both
//! WCNF dialects (classic header and post-2022 headerless).
//!
//! `PROPTEST_CASES` scales the case count (CI runs an elevated pass).

#![recursion_limit = "256"]

use coremax::{
    verify_solution, BranchBound, MaxSatSolver, MaxSatStatus, Msu1, Msu3, Msu4, Oll, Preprocessed,
    Stratified, WeightedByReplication, Wmsu1,
};
use coremax_cnf::{dimacs, Assignment, WcnfFormula, Weight};
use coremax_instances::{random_weighted_wcnf, WeightDist, WeightedConfig};
use proptest::prelude::*;

/// Exhaustive oracle: the minimum cost over all 2^n assignments, or
/// `None` when no assignment satisfies the hard clauses.
fn exhaustive_optimum(w: &WcnfFormula) -> Option<Weight> {
    let n = w.num_vars();
    assert!(n <= 16, "oracle is exponential; keep instances small");
    let mut best: Option<Weight> = None;
    for bits in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let assignment = Assignment::from_bools(&values);
        if let Some(cost) = w.cost(&assignment) {
            best = Some(best.map_or(cost, |b: Weight| b.min(cost)));
        }
    }
    best
}

/// The full differential line-up. Boxed so one loop covers them all;
/// rebuilt per instance (solvers are stateless between solves, but this
/// also proves constructibility stays cheap).
fn lineup() -> Vec<(&'static str, Box<dyn MaxSatSolver>)> {
    vec![
        ("wmsu1", Box::new(Wmsu1::new())),
        ("oll", Box::new(Oll::new())),
        ("stratified<msu3>", Box::new(Stratified::new(Msu3::new()))),
        ("stratified<msu4>", Box::new(Stratified::new(Msu4::v2()))),
        ("stratified<oll>", Box::new(Stratified::new(Oll::new()))),
        (
            "replication<msu1>",
            Box::new(WeightedByReplication::new(Msu1::new())),
        ),
        ("maxsatz-bb", Box::new(BranchBound::new())),
        ("pre(wmsu1)", Box::new(Preprocessed::new(Wmsu1::new()))),
        ("pre(oll)", Box::new(Preprocessed::new(Oll::new()))),
        (
            "pre(stratified<msu3>)",
            Box::new(Preprocessed::new(Stratified::new(Msu3::new()))),
        ),
        (
            "pre(stratified<msu4>)",
            Box::new(Preprocessed::new(Stratified::new(Msu4::v2()))),
        ),
        (
            "pre(replication<msu1>)",
            Box::new(Preprocessed::new(WeightedByReplication::new(Msu1::new()))),
        ),
        (
            "pre(maxsatz-bb)",
            Box::new(Preprocessed::new(BranchBound::new())),
        ),
    ]
}

fn check_against_oracle(w: &WcnfFormula) {
    let oracle = exhaustive_optimum(w);
    for (label, mut solver) in lineup() {
        let s = solver.solve(w);
        prop_assert!(
            verify_solution(w, &s),
            "{label}: solution failed verification"
        );
        match oracle {
            Some(optimum) => {
                prop_assert_eq!(
                    s.status,
                    MaxSatStatus::Optimal,
                    "{} must prove the optimum",
                    label
                );
                prop_assert_eq!(s.cost, Some(optimum), "{} cost differs from oracle", label);
                let model = s.model.as_ref().expect("optimal carries a model");
                prop_assert_eq!(w.cost(model), Some(optimum), "{} model lies", label);
            }
            None => {
                prop_assert_eq!(
                    s.status,
                    MaxSatStatus::Infeasible,
                    "{} must detect infeasibility",
                    label
                );
            }
        }
    }
}

/// Weight distributions under test. Weights stay small enough that
/// `WeightedByReplication`'s default cap is never the limiting factor —
/// the cap path has its own regression tests.
fn arb_dist() -> impl Strategy<Value = WeightDist> {
    prop_oneof![
        (1u64..=3, 1u64..=8).prop_map(|(lo, extra)| WeightDist::Uniform { lo, hi: lo + extra }),
        (0u32..=3).prop_map(|max_exp| WeightDist::PowerOfTwo { max_exp }),
        (1u64..=3, 5u64..=30, 2usize..=4).prop_map(|(light, heavy, heavy_every)| {
            WeightDist::Skewed {
                light,
                heavy,
                heavy_every,
            }
        }),
    ]
}

fn arb_instance() -> impl Strategy<Value = WcnfFormula> {
    (
        3usize..=6, // vars
        0usize..=5, // hard
        2usize..=9, // soft
        arb_dist(),
        any::<u64>(), // seed
    )
        .prop_map(|(num_vars, num_hard, num_soft, dist, seed)| {
            random_weighted_wcnf(&WeightedConfig {
                num_vars,
                num_hard,
                num_soft,
                max_len: 3,
                dist,
                seed,
            })
        })
}

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    // The headline differential property: ten solver configurations,
    // one exhaustive oracle, zero tolerance.
    #[test]
    fn all_weighted_paths_agree_with_the_exhaustive_oracle(w in arb_instance()) {
        check_against_oracle(&w);
    }

    // Round-trip: parse → solve → serialize → reparse → solve must
    // reproduce the optimum in both WCNF dialects.
    #[test]
    fn wcnf_roundtrip_preserves_the_optimum(w in arb_instance()) {
        let direct = Wmsu1::new().solve(&w);
        for (dialect, text) in [
            ("classic", dimacs::write_wcnf(&w)),
            ("post-2022", dimacs::write_wcnf_new(&w)),
        ] {
            let reparsed = dimacs::parse_wcnf(&text)
                .unwrap_or_else(|e| panic!("{dialect} output must parse: {e}"));
            prop_assert_eq!(w.hard_clauses(), reparsed.hard_clauses(), "{} hard", dialect);
            prop_assert_eq!(w.soft_clauses(), reparsed.soft_clauses(), "{} soft", dialect);
            let again = Stratified::new(Msu4::v2()).solve(&reparsed);
            prop_assert_eq!(again.status, direct.status, "{} status", dialect);
            prop_assert_eq!(again.cost, direct.cost, "{} optimum", dialect);
            prop_assert!(verify_solution(&reparsed, &again), "{} verify", dialect);
        }
    }
}

/// Hard-infeasible weighted instances: the generator plants feasible
/// hard parts, so cover the infeasible branch deterministically.
#[test]
fn infeasible_weighted_instances_agree() {
    let w =
        dimacs::parse_wcnf("p wcnf 2 5 99\n99 1 0\n99 -1 2 0\n99 -2 0\n7 1 0\n3 -2 0\n").unwrap();
    assert_eq!(exhaustive_optimum(&w), None);
    for (label, mut solver) in lineup() {
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible, "{label}");
        assert!(verify_solution(&w, &s), "{label}");
    }
}

/// Weights right under the `HARD_WEIGHT` sentinel flow through the
/// native paths (replication is capped and must answer Unknown, never
/// panic or wrap).
#[test]
fn near_sentinel_weights_solve_natively() {
    use coremax_cnf::{Lit, HARD_WEIGHT};
    let mut w = WcnfFormula::new();
    let x = w.new_var();
    w.add_hard([Lit::positive(x)]);
    w.add_soft([Lit::negative(x)], HARD_WEIGHT - 1);
    w.add_soft([Lit::positive(x)], 3);
    for (label, mut solver) in [
        ("wmsu1", Box::new(Wmsu1::new()) as Box<dyn MaxSatSolver>),
        ("oll", Box::new(Oll::new())),
        ("stratified<msu3>", Box::new(Stratified::new(Msu3::new()))),
        ("maxsatz-bb", Box::new(BranchBound::new())),
    ] {
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(HARD_WEIGHT - 1), "{label}");
        assert!(verify_solution(&w, &s), "{label}");
    }
    let s = WeightedByReplication::new(Msu1::new()).solve(&w);
    assert_eq!(s.status, MaxSatStatus::Unknown);
    assert!(verify_solution(&w, &s));
}

/// Duplicate soft clauses with different weights are distinct cost
/// carriers for every solver.
#[test]
fn duplicate_soft_clauses_with_different_weights_agree() {
    let w = dimacs::parse_wcnf("p wcnf 2 5 99\n99 -1 -2 0\n3 1 0\n5 1 0\n2 2 0\n7 2 0\n").unwrap();
    let optimum = exhaustive_optimum(&w).unwrap();
    assert_eq!(optimum, 8); // keep x2 (9 > 8), falsify both x1 copies
    for (label, mut solver) in lineup() {
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(optimum), "{label}");
        assert!(verify_solution(&w, &s), "{label}");
    }
}
