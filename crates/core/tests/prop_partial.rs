//! Property tests over random *partial* MaxSAT instances: all
//! core-guided solvers agree with the branch-and-bound reference (which
//! is exact), and reported models always attain the reported cost.

use coremax::{
    BinarySearchSat, BranchBound, LinearSearchSat, MaxSatSolver, MaxSatStatus, Msu1, Msu2, Msu3,
    Msu4,
};
use coremax_cnf::{Lit, WcnfFormula};
use proptest::prelude::*;

/// Random partial MaxSAT instance: a few hard clauses over the first
/// variables plus unit-weight soft clauses.
fn arb_partial(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    (
        prop::collection::vec(clause.clone(), 0..6),
        prop::collection::vec(clause, 1..14),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for c in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), 1);
            }
            w
        })
}

fn solvers() -> Vec<Box<dyn MaxSatSolver>> {
    vec![
        Box::new(Msu4::v1()),
        Box::new(Msu4::v2()),
        Box::new(Msu1::new()),
        Box::new(Msu2::new()),
        Box::new(Msu3::new()),
        Box::new(LinearSearchSat::new()),
        Box::new(BinarySearchSat::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_agree_with_branch_bound_reference(w in arb_partial(5)) {
        let reference = BranchBound::new().solve(&w);
        for mut solver in solvers() {
            let s = solver.solve(&w);
            prop_assert_eq!(
                s.status, reference.status,
                "{} status differs", solver.name()
            );
            prop_assert_eq!(s.cost, reference.cost, "{} cost differs", solver.name());
            if s.status == MaxSatStatus::Optimal {
                let model = s.model.expect("optimal has model");
                prop_assert_eq!(w.cost(&model), s.cost, "{} model lies", solver.name());
            }
        }
    }

    #[test]
    fn optimum_invariant_under_soft_clause_shuffle(w in arb_partial(5), seed in any::<u64>()) {
        // The optimum must not depend on the order soft clauses are given.
        let base = Msu4::v2().solve(&w).cost;
        let mut shuffled = WcnfFormula::with_vars(w.num_vars());
        for h in w.hard_clauses() {
            shuffled.add_hard(h.lits().iter().copied());
        }
        let mut softs: Vec<_> = w.soft_clauses().to_vec();
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed | 1;
        for i in (1..softs.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            softs.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for s in softs {
            shuffled.add_soft(s.clause.lits().iter().copied(), s.weight);
        }
        prop_assert_eq!(Msu4::v2().solve(&shuffled).cost, base);
    }

    #[test]
    fn adding_a_hard_clause_never_decreases_cost(w in arb_partial(4), d in 1i32..4) {
        let before = Msu4::v2().solve(&w);
        let mut extended = w.clone();
        extended.add_hard([Lit::from_dimacs(d).unwrap()]);
        let after = Msu4::v2().solve(&extended);
        match (before.status, after.status) {
            (MaxSatStatus::Optimal, MaxSatStatus::Optimal) => {
                prop_assert!(after.cost >= before.cost, "hard constraint lowered the cost");
            }
            (MaxSatStatus::Infeasible, s) => {
                prop_assert_eq!(s, MaxSatStatus::Infeasible);
            }
            _ => {}
        }
    }

    #[test]
    fn adding_a_soft_clause_increases_cost_by_at_most_one(w in arb_partial(4), d in 1i32..4) {
        let before = Msu4::v2().solve(&w);
        let mut extended = w.clone();
        extended.add_soft([Lit::from_dimacs(d).unwrap()], 1);
        let after = Msu4::v2().solve(&extended);
        if before.status == MaxSatStatus::Optimal && after.status == MaxSatStatus::Optimal {
            let (b, a) = (before.cost.unwrap(), after.cost.unwrap());
            prop_assert!(a >= b && a <= b + 1, "cost moved from {b} to {a}");
        }
    }
}
