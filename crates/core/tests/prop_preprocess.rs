//! Property tests for the preprocessing wrapper: `simplify → solve →
//! reconstruct` returns the same status and the same MaxSAT optimum as
//! solving directly, on random weighted and unweighted partial
//! instances, and every reconstructed model passes verification against
//! the untouched input.

use coremax::{BranchBound, MaxSatSolver, MaxSatStatus, Msu1, Msu3, Msu4, Preprocessed};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_simp::SimpConfig;
use proptest::prelude::*;

/// Random *unweighted* partial MaxSAT instance.
fn arb_unweighted(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    (
        prop::collection::vec(clause.clone(), 0..8),
        prop::collection::vec(clause, 1..10),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for c in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), 1);
            }
            w
        })
}

/// Random *weighted* partial MaxSAT instance.
fn arb_weighted(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    let weighted = (clause.clone(), 1u64..=6);
    (
        prop::collection::vec(clause, 0..8),
        prop::collection::vec(weighted, 1..8),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for (c, weight) in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), weight);
            }
            w
        })
}

fn check_pair(
    w: &WcnfFormula,
    direct: &coremax::MaxSatSolution,
    pre: &coremax::MaxSatSolution,
    label: &str,
) {
    prop_assert_eq!(pre.status, direct.status, "{} status differs", label);
    prop_assert_eq!(pre.cost, direct.cost, "{} cost differs", label);
    prop_assert!(
        coremax::verify_solution(w, pre),
        "{} reconstructed solution failed verification",
        label
    );
    if pre.status == MaxSatStatus::Optimal {
        let model = pre.model.as_ref().expect("optimal has model");
        prop_assert_eq!(w.cost(model), pre.cost, "{} model lies about cost", label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn unweighted_solvers_unchanged_by_preprocessing(w in arb_unweighted(6)) {
        let direct = Msu4::v2().solve(&w);
        let with_pre = Preprocessed::new(Msu4::v2()).solve(&w);
        check_pair(&w, &direct, &with_pre, "msu4-v2");

        let direct = Msu1::new().solve(&w);
        let with_pre = Preprocessed::new(Msu1::new()).solve(&w);
        check_pair(&w, &direct, &with_pre, "msu1");

        let direct = Msu3::new().solve(&w);
        let with_pre = Preprocessed::new(Msu3::new()).solve(&w);
        check_pair(&w, &direct, &with_pre, "msu3");
    }

    #[test]
    fn weighted_branch_bound_unchanged_by_preprocessing(w in arb_weighted(6)) {
        let direct = BranchBound::new().solve(&w);
        let with_pre = Preprocessed::new(BranchBound::new()).solve(&w);
        check_pair(&w, &direct, &with_pre, "maxsatz-bb");
    }

    #[test]
    fn aggressive_config_still_sound(w in arb_unweighted(6)) {
        // Growth allowed, probing everywhere, many rounds: stresses the
        // elimination stack harder than the defaults.
        let config = SimpConfig {
            grow_limit: 8,
            probe_budget: 10_000,
            max_rounds: 6,
            ..SimpConfig::default()
        };
        let direct = Msu4::v2().solve(&w);
        let with_pre = Preprocessed::with_config(Msu4::v2(), config).solve(&w);
        check_pair(&w, &direct, &with_pre, "msu4-v2/aggressive");
    }
}
