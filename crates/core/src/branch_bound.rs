//! A maxsatz-style branch-and-bound MaxSAT solver — the paper's
//! `maxsatz` column (Li, Manyà & Planes \[17, 18\]).
//!
//! A DPLL-shaped search over the original variables. At every node the
//! current cost (weight of already-falsified soft clauses) plus a lower
//! bound on the cost still to come is compared with the best complete
//! assignment found so far. The lower bound is the hallmark maxsatz
//! technique: **counting disjoint inconsistent subformulas detected by
//! (simulated) unit propagation** \[17\], each of which forces at least
//! one more falsified clause. Hard clauses are handled as
//! infinite-weight clauses (falsifying one prunes immediately).
//!
//! Like the original, this solver shines on small/random instances and
//! collapses on large industrial ones — reproducing the paper's Table 1
//! behaviour requires that weakness, so no clause learning is added.

use std::time::Instant;

use coremax_cnf::{Assignment, Lit, Var, WcnfFormula, Weight};
use coremax_sat::Budget;

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Branch-and-bound MaxSAT solver in the maxsatz tradition. Supports
/// weighted partial instances.
///
/// # Examples
///
/// ```
/// use coremax::{BranchBound, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 2);
/// w.add_soft([Lit::negative(x)], 3);
/// assert_eq!(BranchBound::new().solve(&w).cost, Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchBound {
    budget: Budget,
}

/// Internal clause form: literals plus weight (`None` = hard).
#[derive(Debug, Clone)]
struct BbClause {
    lits: Vec<Lit>,
    weight: Option<Weight>,
}

struct SearchCtx {
    clauses: Vec<BbClause>,
    num_vars: usize,
    best_cost: Weight,
    best_model: Option<Assignment>,
    nodes: u64,
    // Child budget with the deadline resolved and stop flags attached;
    // polled every 256 nodes.
    budget: Budget,
    aborted: bool,
    /// Scratch: per-clause state recomputed against the current partial
    /// assignment during bound computation.
    occurrences: Vec<Vec<usize>>, // var -> clause indices
}

impl BranchBound {
    /// Creates a solver with an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        BranchBound::default()
    }
}

impl MaxSatSolver for BranchBound {
    fn name(&self) -> &'static str {
        "maxsatz-bb"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn supports_weights(&self) -> bool {
        true
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let mut clauses: Vec<BbClause> = Vec::with_capacity(wcnf.num_clauses());
        for h in wcnf.hard_clauses() {
            clauses.push(BbClause {
                lits: h.lits().to_vec(),
                weight: None,
            });
        }
        for s in wcnf.soft_clauses() {
            clauses.push(BbClause {
                lits: s.clause.lits().to_vec(),
                weight: Some(s.weight),
            });
        }
        let num_vars = wcnf.num_vars();
        let mut occurrences = vec![Vec::new(); num_vars];
        for (i, c) in clauses.iter().enumerate() {
            for l in &c.lits {
                occurrences[l.var().index()].push(i);
            }
        }

        let total: Weight = wcnf.total_soft_weight();
        let mut ctx = SearchCtx {
            clauses,
            num_vars,
            best_cost: total.saturating_add(1), // sentinel: nothing found yet
            best_model: None,
            nodes: 0,
            budget: child_budget,
            aborted: false,
            occurrences,
        };

        let mut assignment = Assignment::for_vars(num_vars);
        ctx.search(&mut assignment, 0);

        stats.nodes = ctx.nodes;
        stats.wall_time = start.elapsed();
        if ctx.aborted {
            // Branch-and-bound prunes against the incumbent, so an
            // interrupted search certifies no global lower bound beyond
            // the trivial 0; the incumbent (when one exists) is a
            // complete assignment whose cost is exact.
            let has_model = ctx.best_model.is_some();
            return MaxSatSolution {
                status: MaxSatStatus::Unknown,
                cost: has_model.then_some(ctx.best_cost),
                model: ctx.best_model,
                lower_bound: 0,
                stats,
            };
        }
        match ctx.best_model {
            Some(model) => MaxSatSolution {
                status: MaxSatStatus::Optimal,
                cost: Some(ctx.best_cost),
                model: Some(model),
                lower_bound: ctx.best_cost,
                stats,
            },
            None => MaxSatSolution::infeasible(stats),
        }
    }
}

impl SearchCtx {
    /// Cost of soft clauses already falsified; `None` if a hard clause
    /// is falsified.
    fn current_cost(&self, assignment: &Assignment) -> Option<Weight> {
        let mut cost: Weight = 0;
        for c in &self.clauses {
            let falsified = c
                .lits
                .iter()
                .all(|&l| assignment.lit_value(l) == Some(false));
            if falsified {
                match c.weight {
                    None => return None,
                    // Saturating: a wrapped total would understate the
                    // cost and let the search prune the true optimum.
                    Some(w) => cost = cost.saturating_add(w),
                }
            }
        }
        Some(cost)
    }

    /// Lower bound on *additional* cost: disjoint inconsistent
    /// subformulas detected by unit propagation over the reduct of the
    /// unresolved clauses (Li–Manyà–Planes 2006). Each inconsistency
    /// consumes its clauses, so different inconsistencies are disjoint
    /// and their minimum weights add up.
    fn lower_bound(&self, assignment: &Assignment) -> Weight {
        // Build the reduct: clauses not yet satisfied, restricted to
        // unassigned literals; skip already-falsified (counted in cost).
        let mut reduct: Vec<(Vec<Lit>, Option<Weight>)> = Vec::new();
        for c in &self.clauses {
            let mut lits = Vec::new();
            let mut satisfied = false;
            for &l in &c.lits {
                match assignment.lit_value(l) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => lits.push(l),
                }
            }
            if !satisfied && !lits.is_empty() {
                reduct.push((lits, c.weight));
            }
        }

        let mut lb: Weight = 0;
        let mut alive: Vec<bool> = vec![true; reduct.len()];
        // Repeatedly look for an inconsistency via unit propagation over
        // the remaining reduct; on success remove the involved clauses.
        while let Some((involved, min_weight)) = up_inconsistency(&reduct, &alive, self.num_vars) {
            lb = lb.saturating_add(min_weight);
            for i in involved {
                alive[i] = false;
            }
        }
        lb
    }

    fn search(&mut self, assignment: &mut Assignment, cost_unused: Weight) {
        let _ = cost_unused;
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.nodes.is_multiple_of(256) && self.budget.interrupted() {
            self.aborted = true;
            return;
        }

        let cost = match self.current_cost(assignment) {
            Some(c) => c,
            None => return, // hard clause falsified
        };
        if cost >= self.best_cost {
            return;
        }
        let lb = cost + self.lower_bound(assignment);
        if lb >= self.best_cost {
            return;
        }

        // Pick the unassigned variable occurring most often in short
        // unresolved clauses (maxsatz-style heuristic).
        let var = self.pick_branch_var(assignment);
        let var = match var {
            Some(v) => v,
            None => {
                // Complete assignment.
                if cost < self.best_cost {
                    self.best_cost = cost;
                    self.best_model = Some(assignment.clone());
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost });
                    }
                }
                return;
            }
        };

        for value in [true, false] {
            assignment.assign(var, value);
            self.search(assignment, 0);
            if self.aborted {
                assignment.unassign(var);
                return;
            }
            assignment.unassign(var);
        }
    }

    fn pick_branch_var(&self, assignment: &Assignment) -> Option<Var> {
        let mut best: Option<(Var, u64)> = None;
        for v in 0..self.num_vars {
            let var = Var::new(v as u32);
            if assignment.value(var).is_some() {
                continue;
            }
            let mut score = 1u64; // unreferenced variables still branchable
            for &ci in &self.occurrences[v] {
                let c = &self.clauses[ci];
                let mut satisfied = false;
                let mut unassigned = 0u32;
                for &l in &c.lits {
                    match assignment.lit_value(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        None => unassigned += 1,
                        Some(false) => {}
                    }
                }
                if !satisfied && unassigned > 0 {
                    // Shorter effective clauses weigh more.
                    score += 1 << (3u32.saturating_sub(unassigned.min(3)));
                }
            }
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((var, score));
            }
        }
        best.map(|(v, _)| v)
    }
}

/// Searches for one inconsistent subformula using unit propagation over
/// the alive part of the reduct. Returns the indices of the involved
/// clauses and the minimum soft weight among them (hard clauses do not
/// cap the weight). Returns `None` when no inconsistency is found.
fn up_inconsistency(
    reduct: &[(Vec<Lit>, Option<Weight>)],
    alive: &[bool],
    num_vars: usize,
) -> Option<(Vec<usize>, Weight)> {
    // Simulated assignment for the propagation probe.
    let mut value: Vec<Option<bool>> = vec![None; num_vars];
    // For each propagated var, the reduct clause that forced it.
    let mut reason: Vec<usize> = vec![usize::MAX; num_vars];
    let mut trail: Vec<Var> = Vec::new();

    loop {
        let mut progressed = false;
        for (i, (lits, _)) in reduct.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut count = 0;
            for &l in lits {
                match value[l.var().index()] {
                    Some(v) if v == l.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        count += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match count {
                0 => {
                    // Conflict: collect the involved clauses by walking
                    // reasons back from this clause's literals.
                    let mut involved = vec![i];
                    let mut min_weight = reduct[i].1.unwrap_or(Weight::MAX);
                    let mut queue: Vec<Var> = lits.iter().map(|l| l.var()).collect();
                    let mut seen = vec![false; num_vars];
                    while let Some(v) = queue.pop() {
                        if seen[v.index()] || value[v.index()].is_none() {
                            continue;
                        }
                        seen[v.index()] = true;
                        let r = reason[v.index()];
                        if r == usize::MAX {
                            continue;
                        }
                        involved.push(r);
                        min_weight = min_weight.min(reduct[r].1.unwrap_or(Weight::MAX));
                        for &l in &reduct[r].0 {
                            queue.push(l.var());
                        }
                    }
                    involved.sort_unstable();
                    involved.dedup();
                    // A purely-hard inconsistency cannot happen on the
                    // reduct of a feasible branch; weight falls back to 1
                    // defensively.
                    let w = if min_weight == Weight::MAX {
                        1
                    } else {
                        min_weight
                    };
                    let _ = trail;
                    return Some((involved, w));
                }
                1 => {
                    let l = unassigned.expect("one unassigned literal");
                    value[l.var().index()] = Some(l.is_positive());
                    reason[l.var().index()] = i;
                    trail.push(l.var());
                    progressed = true;
                }
                _ => {}
            }
        }
        if !progressed {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn paper_examples() {
        let e1 = unweighted("p cnf 2 3\n1 0\n2 -1 0\n-2 0\n");
        assert_eq!(BranchBound::new().solve(&e1).cost, Some(1));
        let e2 =
            unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let s = BranchBound::new().solve(&e2);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.num_satisfied(&e2), Some(6));
    }

    #[test]
    fn weighted_instances() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 2);
        w.add_soft([Lit::negative(x)], 5);
        let s = BranchBound::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.model.unwrap().value(x), Some(false));
    }

    #[test]
    fn hard_clauses_respected() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], 10);
        let s = BranchBound::new().solve(&w);
        assert_eq!(s.cost, Some(10));
        assert_eq!(s.model.unwrap().value(x), Some(true));
    }

    #[test]
    fn infeasible_hard() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        assert_eq!(
            BranchBound::new().solve(&w).status,
            MaxSatStatus::Infeasible
        );
    }

    #[test]
    fn agrees_with_oracle() {
        let mut seed = 0x8BB84B93962EACC9u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let num_vars = 4 + (next() % 4) as usize;
            let num_clauses = 5 + (next() % 12) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            let s = BranchBound::new().solve(&w);
            assert_eq!(s.cost, Some(oracle as u64), "bb wrong on {f}");
            let m = s.model.unwrap();
            assert_eq!(w.cost(&m), s.cost);
        }
    }

    #[test]
    fn lower_bound_counts_disjoint_inconsistencies() {
        // (x)(¬x)(y)(¬y): two disjoint UP inconsistencies at the root.
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let s = BranchBound::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        // With a working LB the root alone should prune most branching:
        // 2 vars → at most a handful of nodes.
        assert!(s.stats.nodes <= 16, "nodes = {}", s.stats.nodes);
    }

    #[test]
    fn budget_abort() {
        use std::time::Duration;
        let mut f = coremax_cnf::CnfFormula::new();
        // 18 vars of pairwise conflicts: big search tree.
        let vars: Vec<Var> = (0..18).map(|_| f.new_var()).collect();
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                f.add_clause([Lit::negative(vars[i]), Lit::negative(vars[j])]);
            }
            f.add_clause([Lit::positive(vars[i])]);
        }
        let w = WcnfFormula::from_cnf_all_soft(&f);
        let mut bb = BranchBound::new();
        bb.set_budget(Budget::new().with_timeout(Duration::from_millis(1)));
        let s = bb.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
    }
}
