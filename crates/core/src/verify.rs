//! Independent verification of MaxSAT solutions.

use coremax_cnf::WcnfFormula;

use crate::types::{MaxSatSolution, MaxSatStatus};

/// Checks a [`MaxSatSolution`] against its instance:
///
/// - an `Optimal`/`Unknown` solution with a model must have the model's
///   actual cost equal to the reported cost (and the model must satisfy
///   every hard clause);
/// - an `Optimal` solution must carry both a cost and a model;
/// - an `Infeasible` verdict carries neither.
///
/// This validates *consistency*, not optimality — cross-algorithm
/// agreement tests and the exhaustive oracle cover optimality.
///
/// # Examples
///
/// ```
/// use coremax::{verify_solution, Msu4, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// let s = Msu4::v2().solve(&w);
/// assert!(verify_solution(&w, &s));
/// ```
#[must_use]
pub fn verify_solution(wcnf: &WcnfFormula, solution: &MaxSatSolution) -> bool {
    match solution.status {
        MaxSatStatus::Infeasible => solution.cost.is_none() && solution.model.is_none(),
        MaxSatStatus::Optimal => {
            let (Some(cost), Some(model)) = (solution.cost, solution.model.as_ref()) else {
                return false;
            };
            wcnf.cost(model) == Some(cost)
        }
        MaxSatStatus::Unknown => match (&solution.model, solution.cost) {
            (Some(model), Some(cost)) => {
                // Best-known model: its true cost may be at most the
                // reported bound.
                wcnf.cost(model).is_some_and(|c| c <= cost)
            }
            (None, None) => true,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MaxSatStats;
    use coremax_cnf::{Assignment, Lit};

    fn instance() -> WcnfFormula {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        w.add_soft([Lit::negative(x)], 1);
        w
    }

    #[test]
    fn accepts_consistent_optimal() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(1),
            model: Some(Assignment::from_bools(&[true])),
            stats: MaxSatStats::default(),
        };
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn rejects_wrong_cost() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(0),
            model: Some(Assignment::from_bools(&[true])),
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn rejects_optimal_without_model() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(1),
            model: None,
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn rejects_model_violating_hard_clause() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], 1);
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(0),
            model: Some(Assignment::from_bools(&[false])),
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn accepts_infeasible_and_empty_unknown() {
        let w = instance();
        assert!(verify_solution(
            &w,
            &MaxSatSolution::infeasible(MaxSatStats::default())
        ));
        let unknown = MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            stats: MaxSatStats::default(),
        };
        assert!(verify_solution(&w, &unknown));
    }
}
