//! Independent verification of MaxSAT solutions.

use coremax_cnf::WcnfFormula;

use crate::types::{MaxSatSolution, MaxSatStatus};

/// Checks a [`MaxSatSolution`] against its instance:
///
/// - an `Optimal`/`Unknown` solution with a model must have the model's
///   actual cost *equal* to the reported cost (and the model must
///   satisfy every hard clause) — an incumbent certifies its upper
///   bound exactly, never approximately;
/// - an `Optimal` solution must carry both a cost and a model, and its
///   `lower_bound` must not exceed the proven cost;
/// - an `Unknown` solution's certified interval must be consistent:
///   `lower_bound ≤ cost` whenever an incumbent is reported;
/// - an `Infeasible` verdict carries neither cost nor model.
///
/// This validates *consistency*, not optimality — cross-algorithm
/// agreement tests and the exhaustive oracle cover optimality (and the
/// fault-injection harness covers `lower_bound ≤ optimum`).
///
/// # Examples
///
/// ```
/// use coremax::{verify_solution, Msu4, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// let s = Msu4::v2().solve(&w);
/// assert!(verify_solution(&w, &s));
/// ```
#[must_use]
pub fn verify_solution(wcnf: &WcnfFormula, solution: &MaxSatSolution) -> bool {
    match solution.status {
        MaxSatStatus::Infeasible => solution.cost.is_none() && solution.model.is_none(),
        MaxSatStatus::Optimal => {
            let (Some(cost), Some(model)) = (solution.cost, solution.model.as_ref()) else {
                return false;
            };
            solution.lower_bound <= cost && wcnf.cost(model) == Some(cost)
        }
        MaxSatStatus::Unknown => match (&solution.model, solution.cost) {
            (Some(model), Some(cost)) => {
                // The incumbent certifies its bound exactly: the
                // interval [lower_bound, cost] must be well-formed and
                // the model's true cost must match the reported one.
                solution.lower_bound <= cost && wcnf.cost(model) == Some(cost)
            }
            (None, None) => true,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MaxSatStats;
    use coremax_cnf::{Assignment, Lit};

    fn instance() -> WcnfFormula {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        w.add_soft([Lit::negative(x)], 1);
        w
    }

    #[test]
    fn accepts_consistent_optimal() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(1),
            model: Some(Assignment::from_bools(&[true])),
            lower_bound: 1,
            stats: MaxSatStats::default(),
        };
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn rejects_wrong_cost() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(0),
            model: Some(Assignment::from_bools(&[true])),
            lower_bound: 0,
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn rejects_optimal_without_model() {
        let w = instance();
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(1),
            model: None,
            lower_bound: 0,
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn rejects_model_violating_hard_clause() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], 1);
        let s = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(0),
            model: Some(Assignment::from_bools(&[false])),
            lower_bound: 0,
            stats: MaxSatStats::default(),
        };
        assert!(!verify_solution(&w, &s));
    }

    #[test]
    fn accepts_infeasible_and_empty_unknown() {
        let w = instance();
        assert!(verify_solution(
            &w,
            &MaxSatSolution::infeasible(MaxSatStats::default())
        ));
        let unknown = MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            lower_bound: 1,
            stats: MaxSatStats::default(),
        };
        assert!(verify_solution(&w, &unknown));
    }

    #[test]
    fn unknown_incumbent_must_match_cost_exactly_and_contain_lb() {
        let w = instance();
        // Model of true cost 1 reported as cost 2: rejected (the
        // incumbent must certify its bound exactly).
        let padded = MaxSatSolution::interval(
            0,
            Some(2),
            Some(Assignment::from_bools(&[true])),
            MaxSatStats::default(),
        );
        assert!(!verify_solution(&w, &padded));
        // lb above the incumbent cost: malformed interval.
        let inverted = MaxSatSolution::interval(
            2,
            Some(1),
            Some(Assignment::from_bools(&[true])),
            MaxSatStats::default(),
        );
        assert!(!verify_solution(&w, &inverted));
        // Exact incumbent with a consistent lb: accepted.
        let exact = MaxSatSolution::interval(
            1,
            Some(1),
            Some(Assignment::from_bools(&[true])),
            MaxSatStats::default(),
        );
        assert!(verify_solution(&w, &exact));
    }
}
