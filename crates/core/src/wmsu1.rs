//! wmsu1 — weight-aware Fu & Malik with weight splitting (WMSU1/WPM1).
//!
//! The msu* algorithms of the DATE'08 paper are defined for unweighted
//! (partial) MaxSAT; their canonical weighted successor keeps the core
//! relaxation loop but *splits* weights instead of counting clauses:
//! when an unsatisfiable core is found, the minimum weight `w_min` over
//! its soft clauses is charged to the lower bound, every core clause of
//! weight `w > w_min` is cloned into a residual copy at `w − w_min`,
//! the `w_min` shares are relaxed with fresh blocking variables, and an
//! exactly-one constraint over the fresh variables is added as hard
//! clauses (Ansótegui–Bonet–Levy's WPM1 / Manquinho–Marques-Silva–
//! Planes's WBO lineage). On unweighted input the algorithm degenerates
//! to [`crate::Msu1`] exactly.

use std::time::Instant;

use coremax_cards::{encode_exactly, CardEncoding, CnfSink};
use coremax_cnf::{Lit, WcnfFormula, Weight};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SharedContext, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Weight-aware Fu & Malik (WMSU1): per-core relaxation with weight
/// splitting. Handles arbitrary weighted partial MaxSAT natively — no
/// clause replication, no weight cap.
///
/// # Examples
///
/// ```
/// use coremax::{MaxSatSolver, Wmsu1};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1_000_000);
/// w.add_soft([Lit::negative(x)], 7);
/// let s = Wmsu1::new().solve(&w);
/// assert_eq!(s.cost, Some(7));
/// assert!(coremax::verify_solution(&w, &s));
/// ```
#[derive(Debug, Clone)]
pub struct Wmsu1 {
    encoding: CardEncoding,
    budget: Budget,
    engine_mode: EngineMode,
    shared: Option<SharedContext>,
}

impl Default for Wmsu1 {
    fn default() -> Self {
        Wmsu1::new()
    }
}

impl Wmsu1 {
    /// wmsu1 with the pairwise exactly-one encoding (Fu & Malik's
    /// original choice; cores are usually small).
    #[must_use]
    pub fn new() -> Self {
        Wmsu1 {
            encoding: CardEncoding::Pairwise,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// wmsu1 with an alternative exactly-one encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        Wmsu1 {
            encoding,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

/// One working soft clause: original literals plus accumulated blocking
/// literals, at the weight share it currently carries.
#[derive(Debug, Clone)]
struct WorkingSoft {
    lits: Vec<Lit>,
    weight: Weight,
}

impl MaxSatSolver for Wmsu1 {
    fn name(&self) -> &'static str {
        "wmsu1"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.shared = Some(ctx);
    }

    fn supports_weights(&self) -> bool {
        true
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let mut cost: Weight = 0;

        let finish = |status: MaxSatStatus,
                      cost: Option<Weight>,
                      lower_bound: Weight,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost,
                model,
                lower_bound,
                stats,
            }
        };

        // One engine for the whole run; every working soft clause (the
        // originals and the residual copies splitting creates) is
        // enforced through its selector assumption. Extending a clause
        // with a blocking literal retires the old copy and registers the
        // extended one under a fresh selector.
        let mut engine =
            IncrementalSolver::with_mode_and_shared(self.engine_mode, self.shared.clone());
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause_shared(h.lits().iter().copied());
        }
        // Soft clauses gain blocking literals and shed weight over time;
        // splitting appends residual copies.
        let mut soft: Vec<WorkingSoft> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| WorkingSoft {
                lits: s.clause.lits().to_vec(),
                weight: s.weight,
            })
            .collect();
        let mut handles: Vec<SoftId> = soft
            .iter()
            .map(|s| engine.add_soft(s.lits.iter().copied()))
            .collect();

        loop {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    // Every core charged w_min to `cost` (saturating):
                    // a certified lower bound on the optimum.
                    return finish(MaxSatStatus::Unknown, None, cost, None, stats);
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = engine.model().expect("model after SAT").clone();
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: cost,
                            ub: Some(cost),
                        });
                    }
                    stats.absorb_sat(&engine.stats());
                    return finish(MaxSatStatus::Optimal, Some(cost), cost, Some(model), stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    // Refuted independently of the soft assumptions: the
                    // hard (plus exactly-one) skeleton is contradictory —
                    // selectors are free at the clause level and the
                    // exactly-one constraints are satisfiable on their
                    // own, so the instance has no feasible assignment.
                    if engine.formula_refuted() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    stats.cores += 1;
                    let failed = engine.failed_softs();
                    let in_core: Vec<usize> = failed
                        .iter()
                        .filter_map(|id| handles.iter().position(|h| h == id))
                        .collect();
                    if in_core.is_empty() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    let w_min = in_core
                        .iter()
                        .map(|&i| soft[i].weight)
                        .min()
                        .expect("non-empty core");
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: in_core.len() as u64,
                            weight: w_min,
                        });
                    }
                    // Relax the w_min share of every core clause with a
                    // fresh blocking variable; clauses heavier than
                    // w_min keep a residual un-relaxed copy (registered
                    // *before* the blocking literal is appended).
                    let mut fresh: Vec<Lit> = Vec::with_capacity(in_core.len());
                    for &i in &in_core {
                        if soft[i].weight > w_min {
                            soft.push(WorkingSoft {
                                lits: soft[i].lits.clone(),
                                weight: soft[i].weight.saturating_sub(w_min),
                            });
                            let residual = engine.add_soft(soft[i].lits.iter().copied());
                            handles.push(residual);
                            soft[i].weight = w_min;
                            stats.weight_splits += 1;
                        }
                        let b = Lit::positive(engine.new_var());
                        soft[i].lits.push(b);
                        fresh.push(b);
                        stats.blocking_vars += 1;
                        engine.retire(handles[i]);
                        handles[i] = engine.add_soft(soft[i].lits.iter().copied());
                    }
                    let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                    let mut sink = CnfSink::new(engine.num_vars());
                    encode_exactly(&fresh, 1, self.encoding, &mut sink);
                    engine.ensure_vars(sink.num_vars());
                    let new_clauses = sink.into_clauses();
                    stats.cardinality_clauses += new_clauses.len() as u64;
                    let clauses_added = new_clauses.len() as u64;
                    for c in new_clauses {
                        engine.add_clause(c);
                    }
                    encode_span.finish(&mut stats.phase);
                    cost = cost.saturating_add(w_min);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                            blocking_vars: fresh.len() as u64,
                            clauses: clauses_added,
                        });
                        coremax_obs::emit(coremax_obs::Event::Bounds { lb: cost, ub: None });
                    }
                }
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                return finish(MaxSatStatus::Unknown, None, cost, None, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_solution, BranchBound, Msu1};
    use coremax_cnf::dimacs;

    fn weighted(text: &str) -> WcnfFormula {
        dimacs::parse_wcnf(text).unwrap()
    }

    #[test]
    fn trivially_satisfiable_costs_zero() {
        let w = weighted("p wcnf 2 2 9\n5 1 2 0\n3 -1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
        assert_eq!(s.stats.cores, 0);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn picks_the_lighter_side_of_a_conflict() {
        let w = weighted("p wcnf 1 2\n4 1 0\n9 -1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.cost, Some(4));
        assert!(verify_solution(&w, &s));
        // One core over both clauses, split at w_min = 4: the weight-9
        // clause is cloned at weight 5.
        assert_eq!(s.stats.cores, 1);
        assert_eq!(s.stats.weight_splits, 1);
    }

    #[test]
    fn repeated_cores_accumulate_weight() {
        // Hard x, softs ¬x at 2 and ¬x at 3: cost must reach 5.
        let w = weighted("p wcnf 1 3 9\n9 1 0\n2 -1 0\n3 -1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.cost, Some(5));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn degenerates_to_msu1_on_unweighted_input() {
        let text = "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n";
        let w = WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap());
        let weighted_run = Wmsu1::new().solve(&w);
        let unweighted_run = Msu1::new().solve(&w);
        assert_eq!(weighted_run.cost, unweighted_run.cost);
        assert_eq!(weighted_run.cost, Some(2));
        assert_eq!(weighted_run.stats.weight_splits, 0);
    }

    #[test]
    fn partial_infeasible() {
        let w = weighted("p wcnf 1 3 9\n9 1 0\n9 -1 0\n5 1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn huge_weights_without_replication() {
        // Total weight 3·10^12: far beyond any replication cap.
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        w.add_hard([Lit::negative(x), Lit::negative(y)]);
        w.add_soft([Lit::positive(x)], 1_000_000_000_000);
        w.add_soft([Lit::positive(y)], 2_000_000_000_000);
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.cost, Some(1_000_000_000_000));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn sentinel_adjacent_weights_split_without_overflow() {
        // HARD_WEIGHT − 1 is the largest legal soft weight; a core
        // pairing it with a tiny clause splits at w_min = 3 and must
        // compute the residual HARD_WEIGHT − 4 without wrapping.
        use coremax_cnf::HARD_WEIGHT;
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], HARD_WEIGHT - 1);
        w.add_soft([Lit::negative(x)], 3);
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(3));
        assert!(s.stats.weight_splits >= 1);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn duplicate_soft_clauses_with_different_weights() {
        // (x) at 3 and (x) at 5 against hard ¬x: both copies count.
        let w = weighted("p wcnf 1 3 9\n9 -1 0\n3 1 0\n5 1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.cost, Some(8));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn agrees_with_branch_bound_on_random_weighted() {
        let mut seed = 0x1357_9BDF_2468_ACE0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..15 {
            let num_vars = 3 + (next() % 3) as usize;
            let mut w = WcnfFormula::with_vars(num_vars);
            for _ in 0..(4 + next() % 6) {
                let len = 1 + (next() % 2) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::new(
                            coremax_cnf::Var::new((next() % num_vars as u64) as u32),
                            next() & 1 == 0,
                        )
                    })
                    .collect();
                w.add_soft(lits, 1 + next() % 9);
            }
            let oracle = BranchBound::new().solve(&w);
            let s = Wmsu1::new().solve(&w);
            assert_eq!(s.cost, oracle.cost, "wmsu1 wrong on round {round}");
            assert!(verify_solution(&w, &s));
        }
    }

    #[test]
    fn alternative_encoding_agrees() {
        let w = weighted("p wcnf 2 4 9\n9 1 2 0\n4 -1 0\n3 -2 0\n2 1 0\n");
        let base = Wmsu1::new().solve(&w);
        for encoding in [
            CardEncoding::Totalizer,
            CardEncoding::SequentialCounter,
            CardEncoding::Bdd,
        ] {
            let s = Wmsu1::with_encoding(encoding).solve(&w);
            assert_eq!(s.cost, base.cost, "{encoding}");
            assert!(verify_solution(&w, &s));
        }
    }

    #[test]
    fn budget_abort() {
        use std::time::Duration;
        let w = weighted("p wcnf 2 4\n3 1 0\n4 -1 0\n2 2 0\n5 -2 0\n");
        let mut solver = Wmsu1::new();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
        assert!(s.lower_bound <= 5, "lb never exceeds the optimum");
    }

    #[test]
    fn optimal_lower_bound_equals_cost() {
        let w = weighted("p wcnf 1 2\n4 1 0\n9 -1 0\n");
        let s = Wmsu1::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.lower_bound, 4);
        assert_eq!(s.gap(), Some(0));
    }
}
