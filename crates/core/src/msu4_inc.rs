//! Incremental msu4 over a single persistent SAT solver.
//!
//! The paper's §5 names "exploit[ing] alternative SAT solver technology"
//! as the first improvement direction; this module is that improvement.
//! Instead of rebuilding the working formula each iteration (the msu4
//! paper used non-incremental MiniSAT 1.14), every soft clause `ωᵢ` is
//! added **once** as `ωᵢ ∨ sᵢ` with a fresh selector variable, and the
//! selectors double as blocking variables:
//!
//! - an *unblocked* clause is enforced by assuming `¬sᵢ`;
//! - the solver's **failed assumptions** after an UNSAT answer name the
//!   soft clauses of a core directly — no clause-id bookkeeping;
//! - *blocking* a clause just removes its `¬sᵢ` assumption;
//! - cardinality constraints over the active selectors only tighten, so
//!   they are added to the same solver incrementally.
//!
//! This is how later core-guided solvers (e.g. open-wbo's MSU3/OLL
//! implementations) drive their SAT engines, applied to Algorithm 1.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SharedContext, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Assumption-based incremental msu4. Same algorithm and answer as
/// [`crate::Msu4`], one SAT solver for the whole run.
///
/// # Input restrictions
///
/// Unweighted (partial) MaxSAT, like [`crate::Msu4`].
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{Msu4Incremental, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(Msu4Incremental::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Msu4Incremental {
    encoding: CardEncoding,
    budget: Budget,
    engine_mode: EngineMode,
    shared: Option<SharedContext>,
}

impl Default for Msu4Incremental {
    fn default() -> Self {
        Msu4Incremental::new()
    }
}

impl Msu4Incremental {
    /// Incremental msu4 with the sorting-network (v2) encoding.
    #[must_use]
    pub fn new() -> Self {
        Msu4Incremental {
            encoding: CardEncoding::SortingNetwork,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// Incremental msu4 with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        Msu4Incremental {
            encoding,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

impl MaxSatSolver for Msu4Incremental {
    fn name(&self) -> &'static str {
        "msu4-inc"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.shared = Some(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu4-inc handles unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();
        let num_soft = wcnf.num_soft();

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      lower_bound: usize,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model,
                lower_bound: lower_bound as u64,
                stats,
            }
        };

        // One engine for the whole run; the selector-per-soft-clause
        // bookkeeping this module used to do by hand now lives in
        // `IncrementalSolver`.
        let mut engine =
            IncrementalSolver::with_mode_and_shared(self.engine_mode, self.shared.clone());
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause_shared(h.lits().iter().copied());
        }
        let handles: Vec<SoftId> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| engine.add_soft(s.clause.lits().iter().copied()))
            .collect();

        let mut vb: Vec<Lit> = Vec::new(); // selectors of blocked clauses
        let mut lb = 0usize;
        let mut ub = num_soft;
        let mut best_model: Option<coremax_cnf::Assignment> = None;
        // Whether any cardinality-bound clauses were materialised: a
        // clause-level refutation *before* that can only involve the
        // hard clauses (relaxed softs are unrefutable — their selectors
        // are free), i.e. the instance is infeasible.
        let mut bounds_added = false;

        loop {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    // Certified interval: lb from disjoint cores, ub from
                    // the best model found so far.
                    return finish(
                        MaxSatStatus::Unknown,
                        best_model.is_some().then_some(ub),
                        lb,
                        best_model,
                        stats,
                    );
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    if engine.formula_refuted() {
                        // Refuted independently of the assumptions: either
                        // the hard clauses are inconsistent (infeasible) or
                        // the accumulated bounds are (current ub optimal —
                        // Algorithm 1's line 21/22 case). Bound clauses
                        // only exist after a SAT iteration, so an
                        // `Optimal` here always carries that iteration's
                        // model; before any bound the refutation can only
                        // cite hard clauses, however late CDCL finds it.
                        if !bounds_added {
                            stats.absorb_sat(&engine.stats());
                            return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                        }
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Optimal, Some(ub), ub, best_model, stats);
                    }
                    stats.cores += 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: engine.failed_softs().len() as u64,
                            weight: 1,
                        });
                    }
                    // Failed softs name the core's clauses directly, all
                    // unblocked by construction.
                    let mut fresh = 0usize;
                    for id in engine.failed_softs() {
                        if handles.contains(&id) && engine.is_active(id) {
                            engine.deactivate(id);
                            vb.push(engine.selector(id));
                            fresh += 1;
                            stats.blocking_vars += 1;
                        }
                    }
                    if fresh == 0 {
                        // The assumption core was empty or already
                        // blocked: the hard part must be inconsistent.
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    lb += 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: lb as u64,
                            ub: best_model.is_some().then_some(ub as u64),
                        });
                    }
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = engine.model().expect("model after SAT").clone();
                    // Cost = falsified soft clauses (unblocked ones are
                    // enforced by assumptions, so only blocked count).
                    let f = wcnf
                        .soft_clauses()
                        .iter()
                        .filter(|s| !s.clause.is_satisfied_by(&model))
                        .count();
                    if f < ub || best_model.is_none() {
                        ub = f;
                        best_model = Some(model);
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::Incumbent { cost: ub as u64 });
                            coremax_obs::emit(coremax_obs::Event::Bounds {
                                lb: lb as u64,
                                ub: Some(ub as u64),
                            });
                        }
                    }
                    if ub == 0 {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Optimal, Some(0), 0, best_model, stats);
                    }
                    // Tighten: Σ_vb s ≤ ub − 1 (added permanently; bounds
                    // only tighten so stale ones are merely redundant).
                    let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                    let mut sink = CnfSink::new(engine.num_vars());
                    encode_at_most(&vb, ub - 1, self.encoding, &mut sink);
                    engine.ensure_vars(sink.num_vars());
                    let clauses = sink.into_clauses();
                    stats.cardinality_clauses += clauses.len() as u64;
                    bounds_added |= !clauses.is_empty();
                    let clauses_added = clauses.len() as u64;
                    for c in clauses {
                        engine.add_clause(c);
                    }
                    encode_span.finish(&mut stats.phase);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                            blocking_vars: 0,
                            clauses: clauses_added,
                        });
                    }
                }
            }
            if lb >= ub {
                if best_model.is_none() {
                    // The lower bound met the worst case before any SAT
                    // iteration (every soft clause is blocked, so the
                    // assumption set is empty): one relaxed call
                    // materialises a model attaining `ub` — an Optimal
                    // verdict must never be model-free — or exposes the
                    // hard clauses as infeasible.
                    stats.sat_calls += 1;
                    match engine.solve_exact(&[]) {
                        SolveOutcome::Sat => {
                            stats.sat_iterations += 1;
                            best_model = engine.model().cloned();
                        }
                        SolveOutcome::Unsat => {
                            stats.absorb_sat(&engine.stats());
                            return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                        }
                        SolveOutcome::Unknown => {
                            // lb ≥ ub is proven but no model could be
                            // materialised in time: report the certified
                            // lower bound with no incumbent.
                            stats.absorb_sat(&engine.stats());
                            return finish(MaxSatStatus::Unknown, None, lb.min(ub), None, stats);
                        }
                    }
                }
                stats.absorb_sat(&engine.stats());
                return finish(MaxSatStatus::Optimal, Some(ub), ub, best_model, stats);
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                return finish(
                    MaxSatStatus::Unknown,
                    best_model.is_some().then_some(ub),
                    lb,
                    best_model,
                    stats,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Msu4;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn paper_examples() {
        let e1 = unweighted("p cnf 2 3\n1 0\n2 -1 0\n-2 0\n");
        assert_eq!(Msu4Incremental::new().solve(&e1).cost, Some(1));
        let e2 =
            unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let s = Msu4Incremental::new().solve(&e2);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.num_satisfied(&e2), Some(6));
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 2 2\n1 2 0\n-1 0\n");
        let s = Msu4Incremental::new().solve(&w);
        assert_eq!(s.cost, Some(0));
        assert_eq!(s.stats.sat_calls, 1, "single incremental call suffices");
    }

    #[test]
    fn partial_maxsat() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], 1);
        w.add_soft([Lit::positive(y)], 1);
        let s = Msu4Incremental::new().solve(&w);
        assert_eq!(s.cost, Some(1));
        let m = s.model.unwrap();
        assert_eq!(m.value(x), Some(true));
        assert_eq!(m.value(y), Some(true));
    }

    #[test]
    fn infeasible_hard() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        assert_eq!(
            Msu4Incremental::new().solve(&w).status,
            MaxSatStatus::Infeasible
        );
    }

    #[test]
    fn agrees_with_oracle_and_rebuilding_msu4() {
        let mut seed = 0x5851F42D4C957F2Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..25 {
            let num_vars = 4 + (next() % 4) as usize;
            let num_clauses = 6 + (next() % 12) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::new(
                            coremax_cnf::Var::new((next() % num_vars as u64) as u32),
                            next() & 1 == 0,
                        )
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = (f.num_clauses() - dpll_max_satisfiable(&f)) as u64;
            let w = WcnfFormula::from_cnf_all_soft(&f);
            let inc = Msu4Incremental::new().solve(&w);
            let rebuild = Msu4::v2().solve(&w);
            assert_eq!(
                inc.cost,
                Some(oracle),
                "round {round}: msu4-inc wrong on {f}"
            );
            assert_eq!(inc.cost, rebuild.cost, "round {round}: variants disagree");
            if let Some(m) = &inc.model {
                assert_eq!(w.cost(m), inc.cost);
            }
        }
    }

    #[test]
    fn budget_abort() {
        use std::time::Duration;
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu4Incremental::new();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        assert_eq!(solver.solve(&w).status, MaxSatStatus::Unknown);
    }

    #[test]
    fn optimal_verdict_always_carries_a_model() {
        // Hard (x1 ∨ x2) ∧ ¬x1 with a single soft ¬x2: the first
        // iteration is assumption-UNSAT, so lb meets ub = num_soft
        // before any SAT iteration ran. The fix materialises a model
        // with one relaxed call — an Optimal verdict must never be
        // model-free (Stratified and the parallel portfolio both rely
        // on it).
        use coremax_cnf::Lit;
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_hard([Lit::positive(x1), Lit::positive(x2)]);
        w.add_hard([Lit::negative(x1)]);
        w.add_soft([Lit::negative(x2)], 1);
        let s = Msu4Incremental::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(1));
        let model = s.model.as_ref().expect("optimal must carry a model");
        assert_eq!(w.cost(model), Some(1));
        assert!(crate::verify_solution(&w, &s));
    }

    #[test]
    fn late_hard_infeasibility_is_never_reported_optimal() {
        // Infeasible hard chain plus softs: whether CDCL refutes the
        // hard clauses on the first call or only after assumption
        // iterations blocked every soft, the verdict must be
        // Infeasible — not "Optimal at worst case".
        use coremax_cnf::Lit;
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_hard([Lit::positive(x1)]);
        w.add_hard([Lit::negative(x1), Lit::positive(x2)]);
        w.add_hard([Lit::negative(x2)]);
        w.add_soft([Lit::positive(x1)], 1);
        w.add_soft([Lit::positive(x2)], 1);
        let s = Msu4Incremental::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(s.model.is_none());
    }

    #[test]
    fn single_solver_many_fewer_rebuilds() {
        // Statistics sanity: the incremental variant performs the same
        // number of SAT *calls* but zero solver rebuilds; its call count
        // must match the algorithm's iteration structure.
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let s = Msu4Incremental::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        assert!(s.stats.sat_calls >= 3);
        assert!(s.stats.cores >= 1);
    }
}
