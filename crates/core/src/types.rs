//! Common result types and the solver trait.

use std::fmt;
use std::time::Duration;

use coremax_cnf::{Assignment, WcnfFormula, Weight};
use coremax_obs::PhaseTimes;
use coremax_sat::{Budget, SharedContext, SolverStats};
use coremax_simp::SimpStats;

/// Verdict of a MaxSAT run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxSatStatus {
    /// The optimum was found and proven.
    Optimal,
    /// The hard clauses are unsatisfiable: no assignment is feasible.
    Infeasible,
    /// The budget was exhausted before the optimum was proven (the
    /// instance counts as *aborted* in the paper's tables).
    Unknown,
}

impl fmt::Display for MaxSatStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MaxSatStatus::Optimal => "OPTIMAL",
            MaxSatStatus::Infeasible => "INFEASIBLE",
            MaxSatStatus::Unknown => "UNKNOWN",
        })
    }
}

/// Counters describing the work a MaxSAT solver performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MaxSatStats {
    /// Number of SAT-solver invocations.
    pub sat_calls: u64,
    /// Iterations with an UNSAT outcome (the paper's `νU`).
    pub unsat_iterations: u64,
    /// Iterations with a SAT outcome.
    pub sat_iterations: u64,
    /// Unsatisfiable cores extracted.
    pub cores: u64,
    /// Blocking variables introduced.
    pub blocking_vars: u64,
    /// Clauses generated for cardinality constraints.
    pub cardinality_clauses: u64,
    /// Branch-and-bound nodes explored (B&B solvers only).
    pub nodes: u64,
    /// Soft-clause copies created by WMSU1-style weight splitting: a
    /// core clause of weight `w > w_min` is cloned at `w − w_min`
    /// before its `w_min` share is relaxed.
    pub weight_splits: u64,
    /// Weight strata solved by [`crate::Stratified`] (1 for unweighted
    /// pass-through, 0 for solvers that do not stratify).
    pub strata: u64,
    /// Soft clauses promoted to hard ones by stratification (a stratum
    /// solved at cost 0 is frozen by hardening instead of cardinality)
    /// or by OLL's gap rule (residual weight exceeds `ub − lb`).
    pub hardened: u64,
    /// Incremental totalizer bound extensions performed by OLL-style
    /// solvers: a core containing a totalizer output raised that
    /// totalizer's bound in place (new layers only) instead of
    /// re-encoding it from scratch.
    pub totalizer_extensions: u64,
    /// Total wall-clock time.
    pub wall_time: Duration,
    /// Aggregated CDCL-engine counters across every SAT solver this run
    /// created (propagations, conflicts, LBD histogram, GC activity, …).
    pub sat: SolverStats,
    /// Preprocessing counters (all zero unless the solve went through
    /// [`crate::Preprocessed`]).
    pub simp: SimpStats,
    /// Driver-level per-phase wall time (encoding, preprocessing
    /// passes). The CDCL-engine phases live under [`Self::sat`]'s own
    /// breakdown; [`Self::phase_times`] merges the two. All zero
    /// unless `coremax_obs` timing was enabled during the solve.
    pub phase: PhaseTimes,
}

impl MaxSatStats {
    /// Folds the counters of one underlying SAT solver into this run's
    /// aggregate. Call once per SAT-solver lifetime (after its last
    /// `solve`), since [`SolverStats`] counters are themselves
    /// cumulative.
    pub fn absorb_sat(&mut self, stats: &SolverStats) {
        self.sat.absorb(stats);
    }

    /// Folds the counters of a sub-solve (one stratum, one delegated
    /// inner run) into this run's aggregate. Wall-clock time and
    /// preprocessing counters are *not* merged: the caller owns the
    /// clock, and `simp` describes a single pipeline pass.
    pub fn absorb(&mut self, other: &MaxSatStats) {
        self.sat_calls += other.sat_calls;
        self.unsat_iterations += other.unsat_iterations;
        self.sat_iterations += other.sat_iterations;
        self.cores += other.cores;
        self.blocking_vars += other.blocking_vars;
        self.cardinality_clauses += other.cardinality_clauses;
        self.nodes += other.nodes;
        self.weight_splits += other.weight_splits;
        self.strata += other.strata;
        self.hardened += other.hardened;
        self.totalizer_extensions += other.totalizer_extensions;
        self.sat.absorb(&other.sat);
        self.phase.absorb(&other.phase);
    }

    /// The complete per-phase wall-time breakdown of the run: the
    /// driver-level phases (encode, preprocessing) merged with the
    /// aggregated CDCL-engine phases (propagate, analyze, reductions,
    /// GC, SAT calls).
    #[must_use]
    pub fn phase_times(&self) -> PhaseTimes {
        self.phase.merged(&self.sat.phase)
    }

    /// Serializes the full stats tree — MaxSAT counters, the merged
    /// [`PhaseTimes`] breakdown, the aggregated [`SolverStats`] (with
    /// its own phase breakdown), and the [`SimpStats`] — as one JSON
    /// object. Hand-rolled (no serde), like the BENCH artifacts.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.to_json_into(&mut out);
        out
    }

    /// [`Self::to_json`], appending into an existing buffer.
    pub fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"sat_calls\": {}, \"unsat_iterations\": {}, \"sat_iterations\": {}, \
             \"cores\": {}, \"blocking_vars\": {}, \"cardinality_clauses\": {}, \
             \"nodes\": {}, \"weight_splits\": {}, \"strata\": {}, \"hardened\": {}, \
             \"totalizer_extensions\": {}, \"wall_time_ms\": {:.3}, \"phase_times\": ",
            self.sat_calls,
            self.unsat_iterations,
            self.sat_iterations,
            self.cores,
            self.blocking_vars,
            self.cardinality_clauses,
            self.nodes,
            self.weight_splits,
            self.strata,
            self.hardened,
            self.totalizer_extensions,
            self.wall_time.as_secs_f64() * 1e3,
        );
        self.phase_times().to_json_into(out);
        out.push_str(", \"sat\": ");
        self.sat.to_json_into(out);
        out.push_str(", \"simp\": ");
        self.simp.to_json_into(out);
        out.push('}');
    }
}

impl fmt::Display for MaxSatStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sat_calls={} unsat_iters={} sat_iters={} cores={} blocking_vars={} card_clauses={} nodes={} weight_splits={} strata={} hardened={} tot_ext={} time={:?}",
            self.sat_calls,
            self.unsat_iterations,
            self.sat_iterations,
            self.cores,
            self.blocking_vars,
            self.cardinality_clauses,
            self.nodes,
            self.weight_splits,
            self.strata,
            self.hardened,
            self.totalizer_extensions,
            self.wall_time
        )?;
        let phase = self.phase_times();
        if !phase.is_zero() {
            write!(f, " phase=[{phase}]")?;
        }
        Ok(())
    }
}

/// The outcome of a MaxSAT solver run.
///
/// `cost` is the total weight of falsified soft clauses: the proven
/// optimum when `status` is [`MaxSatStatus::Optimal`], or the best known
/// upper bound when [`MaxSatStatus::Unknown`] (if any model was found).
///
/// Every run — including a budget-exhausted one — is a **certified
/// interval**: `lower_bound` is a proven lower bound on the optimum
/// (derived from extracted cores; 0 is always sound) and `cost`, when
/// present, is the exact cost of the incumbent `model`, an upper bound.
/// So at any abort point `lower_bound ≤ optimum ≤ cost` holds, and a
/// caller can decide whether the gap is good enough instead of
/// discarding the run.
#[derive(Debug, Clone)]
pub struct MaxSatSolution {
    /// Verdict.
    pub status: MaxSatStatus,
    /// Optimal (or best-known incumbent) cost; `None` when infeasible or
    /// when no model was found within budget. For `Unknown` this is the
    /// *exact* cost of `model` — a certified upper bound.
    pub cost: Option<Weight>,
    /// A model attaining `cost`, if one was found.
    pub model: Option<Assignment>,
    /// Certified lower bound on the optimum cost (0 when nothing was
    /// proven). Equals `cost` for `Optimal`; meaningless for
    /// `Infeasible` (kept at whatever was proven before refutation).
    pub lower_bound: Weight,
    /// Work counters.
    pub stats: MaxSatStats,
}

impl MaxSatSolution {
    /// Convenience constructor for the infeasible verdict.
    #[must_use]
    pub fn infeasible(stats: MaxSatStats) -> Self {
        MaxSatSolution {
            status: MaxSatStatus::Infeasible,
            cost: None,
            model: None,
            lower_bound: 0,
            stats,
        }
    }

    /// Convenience constructor for a budget-exhausted run: a certified
    /// `[lower_bound, cost]` interval (either side may be trivial —
    /// `lower_bound` 0, or no incumbent at all).
    #[must_use]
    pub fn interval(
        lower_bound: Weight,
        cost: Option<Weight>,
        model: Option<Assignment>,
        stats: MaxSatStats,
    ) -> Self {
        MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost,
            model,
            lower_bound,
            stats,
        }
    }

    /// The unproven width of the certified interval: `cost −
    /// lower_bound` for an aborted run with an incumbent, 0 once the
    /// optimum is proven, `None` when no incumbent exists (the upper
    /// side of the interval is still infinite).
    #[must_use]
    pub fn gap(&self) -> Option<Weight> {
        match self.status {
            MaxSatStatus::Optimal => Some(0),
            MaxSatStatus::Infeasible => None,
            MaxSatStatus::Unknown => self.cost.map(|c| c.saturating_sub(self.lower_bound)),
        }
    }

    /// Number of satisfied soft clauses under the solution's model
    /// (unweighted view used by the paper, which reports "the MaxSAT
    /// solution" as a satisfied-clause count). `None` without a model.
    #[must_use]
    pub fn num_satisfied(&self, wcnf: &WcnfFormula) -> Option<usize> {
        let model = self.model.as_ref()?;
        wcnf.num_soft_satisfied(model)
    }

    /// Returns `true` if the run proved an optimum.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.status == MaxSatStatus::Optimal
    }
}

/// Common interface of every MaxSAT algorithm in this crate.
///
/// # Panics
///
/// Implementations may document restrictions on the accepted formulas
/// (e.g. [`crate::Msu4`] requires unweighted soft clauses) and panic on
/// unsupported input; see each implementation.
pub trait MaxSatSolver {
    /// A short stable identifier (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// Sets the resource budget for subsequent [`MaxSatSolver::solve`]
    /// calls. Exceeding it yields [`MaxSatStatus::Unknown`].
    fn set_budget(&mut self, budget: Budget);

    /// Returns `true` if [`MaxSatSolver::solve`] accepts soft clauses
    /// with arbitrary weights. Solvers restricted to unweighted
    /// (partial) MaxSAT keep the default `false`; routers such as
    /// [`crate::Stratified`] and the CLI use this to decide whether an
    /// instance can be handed over as-is.
    fn supports_weights(&self) -> bool {
        false
    }

    /// Connects the solver to a portfolio clause exchange (see
    /// `coremax_sat::share`). Solvers that support cooperative sharing
    /// thread the context down to their SAT engines; the default
    /// ignores it, which is always sound — sharing is an optimisation,
    /// never a requirement. Call before [`MaxSatSolver::solve`].
    fn set_shared_context(&mut self, ctx: SharedContext) {
        let _ = ctx;
    }

    /// Solves the given weighted partial MaxSAT instance.
    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution;
}

impl MaxSatSolver for Box<dyn MaxSatSolver> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn set_budget(&mut self, budget: Budget) {
        (**self).set_budget(budget);
    }

    fn supports_weights(&self) -> bool {
        (**self).supports_weights()
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        (**self).set_shared_context(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        (**self).solve(wcnf)
    }
}

/// `Send`-able trait objects: what the parallel portfolio and batch
/// drivers in `coremax_par` move across worker threads.
impl MaxSatSolver for Box<dyn MaxSatSolver + Send> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn set_budget(&mut self, budget: Budget) {
        (**self).set_budget(budget);
    }

    fn supports_weights(&self) -> bool {
        (**self).supports_weights()
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        (**self).set_shared_context(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        (**self).solve(wcnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(MaxSatStatus::Optimal.to_string(), "OPTIMAL");
        assert_eq!(MaxSatStatus::Unknown.to_string(), "UNKNOWN");
        assert_eq!(MaxSatStatus::Infeasible.to_string(), "INFEASIBLE");
    }

    #[test]
    fn infeasible_constructor() {
        let s = MaxSatSolution::infeasible(MaxSatStats::default());
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(s.cost.is_none());
        assert!(s.model.is_none());
        assert_eq!(s.lower_bound, 0);
        assert!(!s.is_optimal());
        assert_eq!(s.gap(), None);
    }

    #[test]
    fn interval_constructor_and_gap() {
        let s = MaxSatSolution::interval(3, Some(7), None, MaxSatStats::default());
        assert_eq!(s.status, MaxSatStatus::Unknown);
        assert_eq!(s.lower_bound, 3);
        assert_eq!(s.gap(), Some(4));
        let open = MaxSatSolution::interval(3, None, None, MaxSatStats::default());
        assert_eq!(open.gap(), None, "no incumbent: upper side open");
        let tight = MaxSatSolution::interval(5, Some(5), None, MaxSatStats::default());
        assert_eq!(tight.gap(), Some(0));
    }

    #[test]
    fn num_satisfied_requires_model() {
        let s = MaxSatSolution::infeasible(MaxSatStats::default());
        let w = WcnfFormula::new();
        assert_eq!(s.num_satisfied(&w), None);
    }

    #[test]
    fn stats_json_is_wellformed_and_nested() {
        let mut st = MaxSatStats {
            sat_calls: 7,
            cores: 3,
            wall_time: Duration::from_millis(12),
            ..MaxSatStats::default()
        };
        st.phase
            .add(coremax_obs::Phase::Encode, Duration::from_micros(5));
        st.totalizer_extensions = 2;
        let v = coremax_obs::json::parse(&st.to_json()).expect("valid json");
        assert_eq!(v.get("sat_calls").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("totalizer_extensions").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("phase_times")
                .unwrap()
                .get("encode_us")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        assert!(v.get("sat").unwrap().get("decisions").is_some());
        assert!(v.get("sat").unwrap().get("phase_times").is_some());
        assert!(v.get("simp").unwrap().get("rounds").is_some());
    }

    #[test]
    fn stats_display_mentions_calls() {
        let st = MaxSatStats {
            sat_calls: 7,
            weight_splits: 3,
            strata: 2,
            totalizer_extensions: 4,
            ..MaxSatStats::default()
        };
        assert!(st.to_string().contains("sat_calls=7"));
        assert!(st.to_string().contains("weight_splits=3"));
        assert!(st.to_string().contains("strata=2"));
        assert!(st.to_string().contains("tot_ext=4"));
    }

    /// The `Send` audit behind `coremax_par`: every solver a portfolio
    /// member can be built from — and the wrappers around them — must
    /// cross thread boundaries, and the shared inputs must be `Sync`.
    /// Compile-time only; if a solver ever grows an `Rc`/`RefCell`
    /// this stops building.
    #[test]
    fn solver_stack_is_send() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<coremax_sat::Solver>();
        assert_send::<Budget>();
        assert_sync::<Budget>();
        assert_sync::<WcnfFormula>();
        assert_send::<crate::Msu1>();
        assert_send::<crate::Msu3>();
        assert_send::<crate::Msu4>();
        assert_send::<crate::Msu4Incremental>();
        assert_send::<crate::Wmsu1>();
        assert_send::<crate::Oll>();
        assert_send::<crate::BranchBound>();
        assert_send::<crate::Stratified<crate::Msu3>>();
        assert_send::<crate::Preprocessed<crate::Msu4>>();
        assert_send::<Box<dyn MaxSatSolver + Send>>();
        assert_send::<crate::Preprocessed<Box<dyn MaxSatSolver + Send>>>();
        assert_send::<crate::Stratified<Box<dyn MaxSatSolver + Send>>>();
    }

    #[test]
    fn boxed_send_solver_dispatches() {
        let mut solver: Box<dyn MaxSatSolver + Send> = Box::new(crate::Msu4::v2());
        assert_eq!(solver.name(), "msu4-v2");
        assert!(!solver.supports_weights());
        solver.set_budget(Budget::new());
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([coremax_cnf::Lit::positive(x)], 1);
        w.add_soft([coremax_cnf::Lit::negative(x)], 1);
        assert_eq!(solver.solve(&w).cost, Some(1));
    }

    #[test]
    fn absorb_sums_counters_but_not_wall_time() {
        let mut a = MaxSatStats {
            sat_calls: 2,
            cores: 1,
            strata: 1,
            wall_time: Duration::from_secs(5),
            ..MaxSatStats::default()
        };
        let b = MaxSatStats {
            sat_calls: 3,
            cores: 2,
            weight_splits: 4,
            hardened: 1,
            totalizer_extensions: 2,
            wall_time: Duration::from_secs(7),
            ..MaxSatStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.sat_calls, 5);
        assert_eq!(a.cores, 3);
        assert_eq!(a.weight_splits, 4);
        assert_eq!(a.strata, 1);
        assert_eq!(a.hardened, 1);
        assert_eq!(a.totalizer_extensions, 2);
        assert_eq!(a.wall_time, Duration::from_secs(5));
    }
}
