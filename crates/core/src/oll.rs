//! OLL/RC2-class core-guided MaxSAT with incremental totalizers.
//!
//! The msu* lineage of the DATE'08 paper relaxes every core with fresh
//! blocking variables and re-encodes its cardinality bound from
//! scratch. The OLL family (Andres–Kaufmann–Matheis–Schaub for ASP,
//! Morgado–Dodaro–Marques-Silva for MaxSAT, and the RC2 solver of the
//! MaxSAT Evaluations) instead keeps a *soft cardinality constraint*
//! per core: the core's relaxation literals feed a truncated totalizer
//! whose output `o(1)` ("two or more violated") becomes a new soft
//! literal. When a later core contains that output, the totalizer's
//! bound is raised **in place** — [`IncrementalTotalizer::increase_bound`]
//! emits only the new layers into the persistent engine — and the next
//! output becomes the next soft. Weights are handled RC2-style: a core
//! charges its minimum weight `w_min` to the certified lower bound,
//! members heavier than `w_min` keep their assumption at the residual
//! weight (a fresh relaxation literal joins the totalizer in their
//! stead), and members at exactly `w_min` are deactivated with their
//! selector counted directly.
//!
//! On top of the core loop sit the two RC2 refinements named by the
//! ROADMAP: *core exhaustion* (a totalizer whose bound reaches its
//! input count can never overflow again and stops producing softs) and
//! *weight-aware hardening* (once an incumbent exists, any working
//! soft whose residual weight exceeds the certified gap `ub − lb` is
//! made permanently hard — falsifying it would already cost more than
//! the incumbent). Incumbents arise from an internal Boolean-
//! lexicographic schedule: softs are activated stratum by stratum
//! (distinct weights, heaviest first), and every SAT answer before the
//! last stratum yields a model whose exact cost is a certified upper
//! bound — so the solver is natively anytime on weighted input.
//!
//! Every intermediate state is a certified interval: `lb` is the sum
//! of per-core charges (sound by the OLL transformation), and the
//! incumbent cost is exact by construction. Budget exhaustion at any
//! point — including between a core and its totalizer extension —
//! returns `[lb, incumbent]`.

use std::collections::HashMap;
use std::time::Instant;

use coremax_cards::{CnfSink, IncrementalTotalizer};
use coremax_cnf::{Lit, WcnfFormula, Weight};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SharedContext, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// OLL/RC2-class solver: soft cardinality constraints with
/// incrementally extended totalizers, core exhaustion and weight-aware
/// hardening. Handles arbitrary weighted partial MaxSAT natively.
///
/// # Examples
///
/// ```
/// use coremax::{MaxSatSolver, Oll};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1_000_000);
/// w.add_soft([Lit::negative(x)], 7);
/// let s = Oll::new().solve(&w);
/// assert_eq!(s.cost, Some(7));
/// assert!(coremax::verify_solution(&w, &s));
/// ```
#[derive(Debug, Clone)]
pub struct Oll {
    budget: Budget,
    engine_mode: EngineMode,
    shared: Option<SharedContext>,
}

impl Default for Oll {
    fn default() -> Self {
        Oll::new()
    }
}

impl Oll {
    /// OLL on a persistent incremental engine.
    #[must_use]
    pub fn new() -> Self {
        Oll {
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

/// Where a working soft came from.
#[derive(Debug, Clone, Copy)]
enum Origin {
    /// One of the instance's original soft clauses.
    Original,
    /// Output `level` of totalizer `tot`: the unit `¬o(level)` asserts
    /// "at most `level` of that totalizer's inputs are true".
    TotOutput {
        /// Index into the solver's totalizer arena.
        tot: usize,
        /// The output index this soft bounds.
        level: usize,
    },
}

/// One working soft: its current (residual) weight and provenance.
#[derive(Debug, Clone, Copy)]
struct Working {
    weight: Weight,
    origin: Origin,
}

/// Moves a sink's fresh variables and clauses into the engine,
/// returning the clause count.
fn drain_sink(engine: &mut IncrementalSolver, sink: CnfSink, stats: &mut MaxSatStats) -> u64 {
    engine.ensure_vars(sink.num_vars());
    let clauses = sink.into_clauses();
    let added = clauses.len() as u64;
    stats.cardinality_clauses += added;
    for c in clauses {
        engine.add_clause(c);
    }
    added
}

impl MaxSatSolver for Oll {
    fn name(&self) -> &'static str {
        "oll"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.shared = Some(ctx);
    }

    fn supports_weights(&self) -> bool {
        true
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let finish = |status: MaxSatStatus,
                      cost: Option<Weight>,
                      lower_bound: Weight,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost,
                model,
                lower_bound,
                stats,
            }
        };

        let mut engine =
            IncrementalSolver::with_mode_and_shared(self.engine_mode, self.shared.clone());
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause_shared(h.lits().iter().copied());
        }

        // Every original soft is registered up front but starts
        // deactivated; the stratified schedule below activates them
        // heaviest-distinct-weight first.
        let mut working: HashMap<SoftId, Working> = HashMap::new();
        let mut pending: Vec<(SoftId, Weight)> = Vec::new();
        for s in wcnf.soft_clauses() {
            let id = engine.add_soft(s.clause.lits().iter().copied());
            engine.deactivate(id);
            pending.push((id, s.weight));
        }

        // Opens the next stratum: activates every pending soft at the
        // heaviest remaining weight.
        let open_stratum = |pending: &mut Vec<(SoftId, Weight)>,
                            working: &mut HashMap<SoftId, Working>,
                            engine: &mut IncrementalSolver,
                            stats: &mut MaxSatStats| {
            let Some(threshold) = pending.iter().map(|&(_, w)| w).max() else {
                return;
            };
            pending.retain(|&(id, w)| {
                if w >= threshold {
                    engine.activate(id);
                    working.insert(
                        id,
                        Working {
                            weight: w,
                            origin: Origin::Original,
                        },
                    );
                    false
                } else {
                    true
                }
            });
            let index = stats.strata;
            stats.strata += 1;
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::StratumOpened {
                    index,
                    weight: threshold,
                    softs: working.len() as u64,
                });
            }
        };
        open_stratum(&mut pending, &mut working, &mut engine, &mut stats);

        let mut tots: Vec<IncrementalTotalizer> = Vec::new();
        let mut lb: Weight = 0;
        let mut best_cost: Option<Weight> = None;
        let mut best_model: Option<coremax_cnf::Assignment> = None;

        loop {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    return finish(MaxSatStatus::Unknown, best_cost, lb, best_model, stats);
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = engine.model().expect("model after SAT").clone();
                    let cost = wcnf
                        .cost(&model)
                        .expect("hard clauses hold under a SAT model");
                    if best_cost.is_none_or(|b| cost < b) {
                        best_cost = Some(cost);
                        best_model = Some(model);
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::Incumbent { cost });
                            coremax_obs::emit(coremax_obs::Event::Bounds { lb, ub: Some(cost) });
                        }
                    }
                    if pending.is_empty() {
                        // SAT under every working assumption: the OLL
                        // invariant makes this model's cost equal the
                        // accumulated per-core charges.
                        let best = best_cost.expect("incumbent just recorded");
                        debug_assert_eq!(best, lb, "final model cost must equal the core charges");
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Optimal, Some(best), best, best_model, stats);
                    }
                    // Weight-aware hardening: with a certified interval
                    // [lb, ub], falsifying any working soft of residual
                    // weight > ub − lb costs more than the incumbent —
                    // make it permanently hard.
                    let ub = best_cost.expect("incumbent exists past the first SAT");
                    let gap = ub.saturating_sub(lb);
                    let to_harden: Vec<SoftId> = working
                        .iter()
                        .filter(|(_, meta)| meta.weight > gap)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in to_harden {
                        let meta = working.remove(&id).expect("listed above");
                        engine.harden(id);
                        stats.hardened += 1;
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::SoftHardened {
                                weight: meta.weight,
                                gap,
                            });
                        }
                    }
                    pending.retain(|&(id, w)| {
                        if w > gap {
                            engine.harden(id);
                            stats.hardened += 1;
                            if coremax_obs::tracing_enabled() {
                                coremax_obs::emit(coremax_obs::Event::SoftHardened {
                                    weight: w,
                                    gap,
                                });
                            }
                            false
                        } else {
                            true
                        }
                    });
                    open_stratum(&mut pending, &mut working, &mut engine, &mut stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    if engine.formula_refuted() {
                        stats.absorb_sat(&engine.stats());
                        // Refuted independently of every assumption.
                        // Before any hardening this can only cite hard
                        // clauses (totalizer definitions and relaxation
                        // links are satisfiable with free selectors):
                        // the instance is infeasible. After hardening it
                        // is unreachable (the incumbent satisfies every
                        // hardened unit); keep the certified interval.
                        return if stats.hardened == 0 && best_cost.is_none() {
                            finish(MaxSatStatus::Infeasible, None, 0, None, stats)
                        } else {
                            finish(MaxSatStatus::Unknown, best_cost, lb, best_model, stats)
                        };
                    }
                    let members: Vec<SoftId> = engine
                        .failed_softs()
                        .into_iter()
                        .filter(|id| working.contains_key(id))
                        .collect();
                    if members.is_empty() {
                        stats.absorb_sat(&engine.stats());
                        return if stats.hardened == 0 && best_cost.is_none() {
                            finish(MaxSatStatus::Infeasible, None, 0, None, stats)
                        } else {
                            finish(MaxSatStatus::Unknown, best_cost, lb, best_model, stats)
                        };
                    }
                    let minw = members
                        .iter()
                        .map(|id| working[id].weight)
                        .min()
                        .expect("non-empty core");
                    stats.cores += 1;
                    lb = lb.saturating_add(minw);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: members.len() as u64,
                            weight: minw,
                        });
                    }

                    // RC2-style core processing. Members heavier than
                    // w_min keep their assumption at the residual weight
                    // and contribute a fresh relaxation literal (true
                    // whenever the member's selector is); members at
                    // exactly w_min are deactivated and contribute their
                    // selector directly.
                    let mut rels: Vec<Lit> = Vec::with_capacity(members.len());
                    let mut extensions: Vec<(usize, usize)> = Vec::new();
                    for &id in &members {
                        let weight = working[&id].weight;
                        if weight > minw {
                            working.get_mut(&id).expect("member is working").weight =
                                weight.saturating_sub(minw);
                            let relax = Lit::positive(engine.new_var());
                            let selector = engine.selector(id);
                            engine.add_clause([!selector, relax]);
                            rels.push(relax);
                            stats.blocking_vars += 1;
                            stats.weight_splits += 1;
                        } else {
                            engine.deactivate(id);
                            let meta = working.remove(&id).expect("member is working");
                            rels.push(engine.selector(id));
                            if let Origin::TotOutput { tot, level } = meta.origin {
                                extensions.push((tot, level));
                            }
                        }
                    }

                    // A fully relaxed totalizer output raises its
                    // totalizer's bound in place: only the new layers
                    // are emitted, and the next output becomes the next
                    // soft. A bound reaching the input count is
                    // exhausted — the count can never overflow again.
                    for (tot, level) in extensions {
                        let next = level + 1;
                        if next >= tots[tot].num_inputs() {
                            continue;
                        }
                        let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                        let mut sink = CnfSink::new(engine.num_vars());
                        tots[tot].increase_bound(next, &mut sink);
                        let clauses = drain_sink(&mut engine, sink, &mut stats);
                        encode_span.finish(&mut stats.phase);
                        let out = tots[tot].output(next).expect("bound just materialised");
                        let id = engine.add_soft([!out]);
                        working.insert(
                            id,
                            Working {
                                weight: minw,
                                origin: Origin::TotOutput { tot, level: next },
                            },
                        );
                        stats.totalizer_extensions += 1;
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::TotalizerExtended {
                                bound: next as u64,
                                clauses,
                            });
                        }
                    }

                    // New soft cardinality constraint over this core's
                    // relaxation literals (a singleton core needs none:
                    // its violation is simply allowed).
                    if rels.len() >= 2 {
                        let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                        let mut sink = CnfSink::new(engine.num_vars());
                        let tot = IncrementalTotalizer::new(&rels, 1, &mut sink);
                        let aux_vars = (sink.num_vars() - engine.num_vars()) as u64;
                        let clauses = drain_sink(&mut engine, sink, &mut stats);
                        encode_span.finish(&mut stats.phase);
                        let out = tot.output(1).expect("two or more inputs");
                        let id = engine.add_soft([!out]);
                        tots.push(tot);
                        working.insert(
                            id,
                            Working {
                                weight: minw,
                                origin: Origin::TotOutput {
                                    tot: tots.len() - 1,
                                    level: 1,
                                },
                            },
                        );
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                                blocking_vars: aux_vars,
                                clauses,
                            });
                        }
                    }
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Bounds { lb, ub: best_cost });
                    }
                }
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                return finish(MaxSatStatus::Unknown, best_cost, lb, best_model, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_solution, BranchBound, Msu1, Wmsu1};
    use coremax_cnf::dimacs;

    fn weighted(text: &str) -> WcnfFormula {
        dimacs::parse_wcnf(text).unwrap()
    }

    #[test]
    fn trivially_satisfiable_costs_zero() {
        let w = weighted("p wcnf 2 2 9\n5 1 2 0\n3 -1 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
        assert_eq!(s.stats.cores, 0);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn picks_the_lighter_side_of_a_conflict() {
        let w = weighted("p wcnf 1 2\n4 1 0\n9 -1 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(4));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn totalizer_extension_fires_on_deep_cores() {
        // At most two of four vars true (every triple of negations is
        // hard), all four positives soft: every core has at least three
        // members, and a single relaxation per totalizer is never
        // enough — the bound must be raised in place.
        let w = weighted(
            "p wcnf 4 8 9\n9 -1 -2 -3 0\n9 -1 -2 -4 0\n9 -1 -3 -4 0\n9 -2 -3 -4 0\n\
             1 1 0\n1 2 0\n1 3 0\n1 4 0\n",
        );
        let s = Oll::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(2));
        assert!(verify_solution(&w, &s));
        assert!(
            s.stats.totalizer_extensions >= 1,
            "deep cores must reuse the totalizer incrementally: {:?}",
            s.stats
        );
    }

    #[test]
    fn core_exhaustion_stops_producing_softs() {
        // At most one of three vars true, all three positives soft:
        // optimum 2. Depending on which cores the engine reports, a
        // two-input totalizer can be driven to its input count — the
        // exhaustion path must not produce an out-of-range output.
        let w = weighted("p wcnf 3 6 9\n9 -1 -2 0\n9 -1 -3 0\n9 -2 -3 0\n1 1 0\n1 2 0\n1 3 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn weight_splitting_keeps_residuals() {
        // Stratum 1 (weight 2) yields an incumbent of cost 2, so the
        // gap is exactly 2 and the heavy soft survives hardening; the
        // weight-1 stratum then puts it in a mixed core, which must
        // split its weight rather than charge the full 2.
        let w = weighted("p wcnf 2 4 9\n9 -2 0\n2 1 0\n1 -1 0\n1 2 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        assert!(verify_solution(&w, &s));
        assert!(s.stats.weight_splits >= 1, "{:?}", s.stats);
    }

    #[test]
    fn degenerates_to_msu_results_on_unweighted_input() {
        let text = "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n";
        let w = WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap());
        let oll = Oll::new().solve(&w);
        let msu1 = Msu1::new().solve(&w);
        assert_eq!(oll.cost, msu1.cost);
        assert_eq!(oll.cost, Some(2));
        assert!(verify_solution(&w, &oll));
    }

    #[test]
    fn partial_infeasible() {
        let w = weighted("p wcnf 1 3 9\n9 1 0\n9 -1 0\n5 1 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn huge_weights_without_replication() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        w.add_hard([Lit::negative(x), Lit::negative(y)]);
        w.add_soft([Lit::positive(x)], 1_000_000_000_000);
        w.add_soft([Lit::positive(y)], 2_000_000_000_000);
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(1_000_000_000_000));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn duplicate_soft_clauses_with_different_weights() {
        let w = weighted("p wcnf 1 3 9\n9 -1 0\n3 1 0\n5 1 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(8));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn near_sentinel_weights_stay_saturating() {
        use coremax_cnf::HARD_WEIGHT;
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], HARD_WEIGHT - 1);
        w.add_soft([Lit::positive(x)], 3);
        let s = Oll::new().solve(&w);
        assert_eq!(s.cost, Some(HARD_WEIGHT - 1));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn agrees_with_branch_bound_on_random_weighted() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..25 {
            let num_vars = 3 + (next() % 3) as usize;
            let mut w = WcnfFormula::with_vars(num_vars);
            for _ in 0..(next() % 3) {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::new(
                            coremax_cnf::Var::new((next() % num_vars as u64) as u32),
                            next() & 1 == 0,
                        )
                    })
                    .collect();
                w.add_hard(lits);
            }
            for _ in 0..(4 + next() % 6) {
                let len = 1 + (next() % 2) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::new(
                            coremax_cnf::Var::new((next() % num_vars as u64) as u32),
                            next() & 1 == 0,
                        )
                    })
                    .collect();
                w.add_soft(lits, 1 + next() % 9);
            }
            let oracle = BranchBound::new().solve(&w);
            let s = Oll::new().solve(&w);
            assert_eq!(s.status, oracle.status, "oll status wrong on round {round}");
            assert_eq!(s.cost, oracle.cost, "oll wrong on round {round}");
            assert!(verify_solution(&w, &s));
        }
    }

    #[test]
    fn agrees_with_wmsu1_on_mixed_strata() {
        // Three weight levels force the stratified schedule through
        // multiple SAT answers before the optimum.
        let w =
            weighted("p wcnf 3 7 99\n99 -1 -2 0\n99 -2 -3 0\n8 1 0\n8 2 0\n2 3 0\n1 1 0\n1 3 0\n");
        let a = Oll::new().solve(&w);
        let b = Wmsu1::new().solve(&w);
        assert_eq!(a.cost, b.cost);
        assert!(verify_solution(&w, &a));
    }

    #[test]
    fn budget_abort_returns_certified_interval() {
        use std::time::Duration;
        let w = weighted("p wcnf 2 4\n3 1 0\n4 -1 0\n2 2 0\n5 -2 0\n");
        let mut solver = Oll::new();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
        assert!(s.lower_bound <= 5, "lb never exceeds the optimum");
        if let (Some(cost), Some(model)) = (s.cost, s.model.as_ref()) {
            assert_eq!(w.cost(model), Some(cost), "incumbent certifies its cost");
            assert!(s.lower_bound <= cost);
        }
    }

    #[test]
    fn optimal_lower_bound_equals_cost() {
        let w = weighted("p wcnf 1 2\n4 1 0\n9 -1 0\n");
        let s = Oll::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.lower_bound, 4);
        assert_eq!(s.gap(), Some(0));
    }

    #[test]
    fn rebuild_mode_agrees() {
        let w = weighted("p wcnf 3 6 9\n9 -1 0\n9 -2 0\n9 -3 0\n2 1 0\n3 2 0\n4 3 0\n");
        let persistent = Oll::new().solve(&w);
        let rebuild = Oll::new().with_engine_mode(EngineMode::Rebuild).solve(&w);
        assert_eq!(persistent.cost, rebuild.cost);
        assert_eq!(persistent.cost, Some(9));
        assert!(verify_solution(&w, &rebuild));
    }

    #[test]
    fn hardening_fires_on_wide_weight_spread() {
        // Heavy stratum solved first yields an incumbent; the light
        // soft (weight 1) is far under the gap, but the heavy pending
        // one (weight 50 > gap) must be hardened.
        let w = weighted("p wcnf 3 6 999\n999 -1 -2 0\n100 1 0\n100 2 0\n50 3 0\n1 -3 0\n1 1 0\n");
        let s = Oll::new().solve(&w);
        let oracle = BranchBound::new().solve(&w);
        assert_eq!(s.cost, oracle.cost);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn empty_formula_is_optimal_at_zero() {
        let w = WcnfFormula::new();
        let s = Oll::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
    }
}
