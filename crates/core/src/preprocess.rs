//! Preprocessing wrapper: simplify once, solve the residual formula,
//! reconstruct the model.
//!
//! Core-guided algorithms rebuild their working formula from the input
//! on every iteration, so any clause the simplifier removes is removed
//! from *every* SAT call of the run. [`Preprocessed`] is the glue: it
//! runs `coremax_simp` with all soft-clause variables frozen (the
//! contract the MSU relaxation schemes require), hands the residual
//! instance to any inner [`MaxSatSolver`], then maps the answer back —
//! cost re-offset by what preprocessing already decided, model extended
//! through the elimination stack — so callers (and
//! [`crate::verify_solution`]) keep working against the untouched
//! input.

use std::time::Instant;

use coremax_cnf::WcnfFormula;
use coremax_sat::{Budget, SharedContext};
use coremax_simp::{SimpConfig, Simplifier};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Wraps any MaxSAT solver with the `coremax_simp` preprocessing
/// pipeline.
///
/// The wrapper is transparent: statuses, costs, and models all refer to
/// the *original* instance. Preprocessing counters surface through
/// [`MaxSatStats::simp`].
///
/// # Examples
///
/// ```
/// use coremax::{MaxSatSolver, Msu4, Preprocessed};
/// use coremax_cnf::dimacs;
///
/// // Hard chain x1→x2→x3 with soft endpoints: the middle variable is
/// // resolved away before msu4 ever runs.
/// let wcnf = dimacs::parse_wcnf(
///     "p wcnf 3 4 9\n9 -1 2 0\n9 -2 3 0\n1 -3 0\n1 1 0\n",
/// ).unwrap();
/// let mut solver = Preprocessed::new(Msu4::v2());
/// let direct = Msu4::v2().solve(&wcnf);
/// let solution = solver.solve(&wcnf);
/// assert_eq!(solution.cost, direct.cost);
/// assert!(coremax::verify_solution(&wcnf, &solution));
/// assert!(solution.stats.simp.eliminated_vars >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Preprocessed<S> {
    inner: S,
    config: SimpConfig,
    budget: Budget,
    shared: Option<SharedContext>,
}

impl<S: MaxSatSolver> Preprocessed<S> {
    /// Wraps `inner` with the default preprocessing configuration.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Preprocessed::with_config(inner, SimpConfig::default())
    }

    /// Wraps `inner` with an explicit preprocessing configuration.
    #[must_use]
    pub fn with_config(inner: S, config: SimpConfig) -> Self {
        Preprocessed {
            inner,
            config,
            budget: Budget::new(),
            shared: None,
        }
    }

    /// The inner solver.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: MaxSatSolver> MaxSatSolver for Preprocessed<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.shared = Some(ctx);
    }

    fn supports_weights(&self) -> bool {
        self.inner.supports_weights()
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        // Anchor the wall-clock budget *before* preprocessing, so
        // simplification time counts against the caller's timeout: the
        // inner solver receives an absolute deadline of `start +
        // timeout` (or the caller's own deadline, whichever is
        // earlier), while conflict/propagation caps pass through.
        let mut inner_budget = self.budget.clone();
        if let Some(deadline) = self.budget.effective_deadline(start) {
            inner_budget = inner_budget.with_deadline(deadline);
        }
        self.inner.set_budget(inner_budget.clone());
        // The simplifier itself takes no budget, so honour cancellation
        // at its boundaries: a raised stop flag (or an already-expired
        // deadline) skips the pipeline entirely, and a stop raised
        // *during* simplification is observed before the inner solve —
        // the simplifier pass is the one uninterruptible window left.
        let abort = |simp_stats, lower_bound: u64, start: Instant| MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            lower_bound,
            stats: MaxSatStats {
                simp: simp_stats,
                wall_time: start.elapsed(),
                ..MaxSatStats::default()
            },
        };
        if inner_budget.interrupted() {
            return abort(coremax_simp::SimpStats::default(), 0, start);
        }
        let mut simplifier = Simplifier::with_config(self.config.clone());
        simplifier.set_budget(inner_budget.clone());
        let simp_span = coremax_obs::span(coremax_obs::Phase::SimpPass);
        let simp = simplifier.simplify(wcnf);
        let simp_stats = *simplifier.stats();
        let mut pre_phase = coremax_obs::PhaseTimes::default();
        simp_span.finish(&mut pre_phase);
        if inner_budget.interrupted() {
            // A completed (or partially completed) pipeline has already
            // charged `cost_offset` for soft clauses it proved falsified
            // in every feasible assignment — a sound lower bound on its
            // own, even with no residual solve.
            let mut solution = abort(simp_stats, simp.cost_offset, start);
            solution.stats.phase.absorb(&pre_phase);
            return solution;
        }
        if simp.infeasible {
            let mut stats = MaxSatStats {
                simp: simp_stats,
                ..MaxSatStats::default()
            };
            stats.phase.absorb(&pre_phase);
            stats.wall_time = start.elapsed();
            return MaxSatSolution::infeasible(stats);
        }
        if let Some(ctx) = &self.shared {
            // Exchange clauses live in the *original* variable space;
            // compose the simplifier's variable compaction on top of the
            // context's translation so imports land on surviving
            // variables (whole clauses touching eliminated variables are
            // skipped) and the inner solver's exports map back. Both
            // directions stay sound: BVE resolvents are implied by the
            // original hards, and an original-space hard-implied clause
            // over kept variables holds in every model of the simplified
            // hards.
            self.inner.set_shared_context(
                ctx.with_var_map(simp.var_map.new_to_old(), simp.var_map.old_to_new()),
            );
        }
        let mut solution = self.inner.solve(&simp.formula);
        solution.stats.simp = simp_stats;
        solution.stats.phase.absorb(&pre_phase);
        solution.stats.wall_time = start.elapsed();
        // Costs on the residual formula miss what preprocessing already
        // charged; models live in the compacted space. The lower bound
        // shifts by the same offset: residual-optimum ≥ inner lb, and
        // original-optimum = residual-optimum + cost_offset.
        solution.cost = solution.cost.map(|c| c.saturating_add(simp.cost_offset));
        solution.lower_bound = solution.lower_bound.saturating_add(simp.cost_offset);
        if let Some(model) = solution.model.take() {
            solution.model = Some(simp.reconstruct_model(&model));
        } else if solution.status == MaxSatStatus::Optimal {
            // Defensive: an optimal verdict without a model cannot be
            // reconstructed; keep it as-is (verify will flag it, as it
            // would for the inner solver alone).
        }
        if solution.status == MaxSatStatus::Unknown {
            // An anytime incumbent certifies its cost *exactly* on the
            // original instance: recompute it through the reconstruction
            // rather than trusting the residual-space figure; drop the
            // incumbent if the reconstructed model cannot be costed.
            match solution.model.as_ref().and_then(|m| wcnf.cost(m)) {
                Some(c) => solution.cost = Some(c),
                None => {
                    solution.model = None;
                    solution.cost = None;
                }
            }
        }
        solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_solution, BranchBound, Msu1, Msu4};
    use coremax_cnf::{dimacs, Lit, WcnfFormula};

    fn chain_instance() -> WcnfFormula {
        dimacs::parse_wcnf("p wcnf 4 6 9\n9 -1 2 0\n9 -2 3 0\n9 -3 4 0\n1 -4 0\n1 1 0\n1 2 0\n")
            .unwrap()
    }

    #[test]
    fn agrees_with_direct_solve_on_chain() {
        let w = chain_instance();
        let direct = Msu4::v2().solve(&w);
        let mut pre = Preprocessed::new(Msu4::v2());
        let s = pre.solve(&w);
        assert_eq!(s.status, direct.status);
        assert_eq!(s.cost, direct.cost);
        assert!(verify_solution(&w, &s), "reconstructed model must verify");
        assert!(s.stats.simp.vars_out < s.stats.simp.vars_in);
    }

    #[test]
    fn infeasible_detected_by_preprocessing() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        let mut pre = Preprocessed::new(Msu4::v2());
        let s = pre.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(verify_solution(&w, &s));
        assert!(s.stats.simp.facts >= 1);
    }

    #[test]
    fn cost_offset_added_back() {
        // Hard unit kills a weight-5 soft clause: the inner solver sees
        // cost 0, the caller must see 5.
        let w = dimacs::parse_wcnf("p wcnf 1 2 9\n9 1 0\n5 -1 0\n").unwrap();
        let mut pre = Preprocessed::new(BranchBound::new());
        let s = pre.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(5));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn weighted_instances_pass_through() {
        let w = dimacs::parse_wcnf("p wcnf 2 4 9\n9 1 2 0\n4 -1 0\n3 -2 0\n2 1 0\n").unwrap();
        let direct = BranchBound::new().solve(&w);
        let mut pre = Preprocessed::new(BranchBound::new());
        let s = pre.solve(&w);
        assert_eq!(s.cost, direct.cost);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn works_with_boxed_solvers() {
        let w = chain_instance();
        let boxed: Box<dyn MaxSatSolver> = Box::new(Msu1::new());
        let mut pre = Preprocessed::new(boxed);
        let s = pre.solve(&w);
        assert_eq!(s.cost, Msu1::new().solve(&w).cost);
        assert!(verify_solution(&w, &s));
        assert_eq!(pre.name(), "msu1");
    }

    #[test]
    fn budget_propagates_to_inner_solver() {
        use std::time::Duration;
        let w = chain_instance();
        let mut pre = Preprocessed::new(Msu4::v2());
        pre.set_budget(Budget::new().with_timeout(Duration::from_secs(30)));
        let s = pre.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
    }

    #[test]
    fn preprocessing_time_counts_against_the_timeout() {
        use std::time::Duration;
        // A 1 ns timeout expires before (or during) preprocessing: the
        // inner solver must see an already-elapsed deadline and abort,
        // exactly as it would without the wrapper.
        let w = chain_instance();
        let mut pre = Preprocessed::new(Msu4::v2());
        pre.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = pre.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
    }

    #[test]
    fn paper_example2_still_optimum_6_of_8() {
        // Plain MaxSAT: no hard clauses, everything frozen — the
        // wrapper must be a clean pass-through.
        let cnf = dimacs::parse_cnf(
            "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
        )
        .unwrap();
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        let mut pre = Preprocessed::new(Msu4::v2());
        let s = pre.solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.num_satisfied(&w), Some(6));
        assert!(verify_solution(&w, &s));
    }
}
