//! msu2 and msu3 — the companion-report algorithms (reference \[22\],
//! Marques-Silva & Planes, CoRR abs/0712.0097).
//!
//! Both are core-guided like msu4 but search the bound from below only
//! (UNSAT → SAT): blocking variables are attached to soft clauses as
//! cores are discovered, and a single global `Σ b ≤ k` constraint is
//! kept, with `k` incremented on every refutation. The first satisfiable
//! working formula proves cost `k` optimal. The report's stated
//! improvements over msu1 are (a) at most one blocking variable per
//! clause and (b) a linear cardinality encoding; we expose both axes:
//!
//! - [`Msu3`]: the plain linear UNSAT→SAT search,
//! - [`Msu2`]: the same search with the sequential-counter ("linear")
//!   encoding and the per-core `Σ ≥ 1` redundant constraints.
//!
//! The exact pseudo-code of \[22\] is not reproduced in the DATE'08
//! paper; this reconstruction matches its described properties (see
//! DESIGN.md §6).

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SharedContext, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Shared implementation of the msu2/msu3 linear UNSAT→SAT search.
#[derive(Debug, Clone)]
struct LinearCore {
    encoding: CardEncoding,
    core_at_least_one: bool,
    budget: Budget,
    engine_mode: EngineMode,
    shared: Option<SharedContext>,
}

impl LinearCore {
    fn solve(&self, wcnf: &WcnfFormula, stats: &mut MaxSatStats) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu2/msu3 handle unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);

        let num_soft = wcnf.num_soft();
        let mut k: usize = 0; // current lower bound on cost

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      lower_bound: usize,
                      model: Option<coremax_cnf::Assignment>,
                      stats: &mut MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model: model.clone(),
                lower_bound: lower_bound as u64,
                stats: *stats,
            }
        };

        // One engine for the whole run. Unblocked softs are enforced by
        // their selector assumptions; *blocking* clause `i` just
        // deactivates it, so its selector becomes the blocking variable
        // the global bound ranges over — no clause is ever re-added.
        let mut engine =
            IncrementalSolver::with_mode_and_shared(self.engine_mode, self.shared.clone());
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause_shared(h.lits().iter().copied());
        }
        let handles: Vec<SoftId> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| engine.add_soft(s.clause.lits().iter().copied()))
            .collect();

        let mut vb: Vec<Lit> = Vec::new(); // selectors of blocked clauses

        // The global `Σ_vb b ≤ k` constraint *loosens* as `k` grows and
        // its variable set grows with `vb`, so each version is gated
        // behind a fresh activation literal: the encoding's clauses all
        // carry `t`, the solve assumes `¬t`, and a superseded version is
        // retired for good by the unit `t`.
        let mut bound_gate: Option<Lit> = None;
        let mut bound_key: (usize, usize) = (0, 0); // (vb.len(), k) encoded

        loop {
            if !vb.is_empty()
                && k < vb.len()
                && (bound_key != (vb.len(), k) || bound_gate.is_none())
            {
                if let Some(t) = bound_gate.take() {
                    engine.add_clause([t]);
                }
                let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                let t = Lit::positive(engine.new_var());
                let mut sink = CnfSink::new(engine.num_vars());
                encode_at_most(&vb, k, self.encoding, &mut sink);
                engine.ensure_vars(sink.num_vars());
                let clauses = sink.into_clauses();
                stats.cardinality_clauses += clauses.len() as u64;
                let clauses_added = clauses.len() as u64;
                for c in clauses {
                    engine.add_clause(c.into_iter().chain(std::iter::once(t)));
                }
                bound_gate = Some(t);
                bound_key = (vb.len(), k);
                encode_span.finish(&mut stats.phase);
                if coremax_obs::tracing_enabled() {
                    coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                        blocking_vars: 0,
                        clauses: clauses_added,
                    });
                }
            } else if k >= vb.len() {
                // The bound is vacuous; retire any active version.
                if let Some(t) = bound_gate.take() {
                    engine.add_clause([t]);
                }
            }
            let gate_assumptions: Vec<Lit> = bound_gate.iter().map(|&t| !t).collect();

            stats.sat_calls += 1;
            match engine.solve(&gate_assumptions) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    // `k` is the running lower bound of the UNSAT→SAT
                    // search: certified even when the run is cut short.
                    return finish(MaxSatStatus::Unknown, None, k, None, stats);
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = engine.model().expect("model after SAT").clone();
                    stats.absorb_sat(&engine.stats());
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost: k as u64 });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: k as u64,
                            ub: Some(k as u64),
                        });
                    }
                    return finish(MaxSatStatus::Optimal, Some(k), k, Some(model), stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    // Refuted independently of every assumption: blocked
                    // selectors and the bound gate are free at the clause
                    // level and the ge1 clauses are satisfiable on their
                    // own, so only the hard clauses can be contradictory.
                    if engine.formula_refuted() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    stats.cores += 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: engine.failed_softs().len() as u64,
                            weight: 1,
                        });
                    }
                    let touched_bound =
                        bound_gate.is_some_and(|t| engine.failed_assumptions().contains(&!t));
                    // Failed soft assumptions are exactly the unblocked
                    // clauses of the core; blocking one turns its selector
                    // into a blocking variable.
                    let mut fresh_blockers: Vec<Lit> = Vec::new();
                    for id in engine.failed_softs() {
                        debug_assert!(handles.contains(&id));
                        if engine.is_active(id) {
                            engine.deactivate(id);
                            let b = engine.selector(id);
                            vb.push(b);
                            stats.blocking_vars += 1;
                            fresh_blockers.push(b);
                        }
                    }
                    if fresh_blockers.is_empty() && !touched_bound {
                        // No assumption of either kind was involved —
                        // cannot happen without a formula-level refutation,
                        // but classify conservatively as infeasible.
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    // Like msu4's optional line-19 constraint, the ≥1
                    // clause is only sound over the *newly* blocked
                    // clauses (cores are not minimal, so previously
                    // blocked clauses may appear spuriously). Unlike in
                    // msu4 — whose accumulated bounds only tighten — the
                    // bound here loosens as `k` grows, so the clause is
                    // implied only when the refutation did not use the
                    // bound at all.
                    if self.core_at_least_one && !fresh_blockers.is_empty() && !touched_bound {
                        engine.add_clause(fresh_blockers.iter().copied());
                        stats.cardinality_clauses += 1;
                    }
                    if fresh_blockers.is_empty() {
                        // The core involves only hard clauses, blocked
                        // clauses and the bound: any assignment of cost ≤ k
                        // would extend to a model of the refuted working
                        // formula, so the refutation proves optimum > k.
                        k += 1;
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::Bounds {
                                lb: k as u64,
                                ub: None,
                            });
                        }
                        if k > num_soft {
                            // Cannot falsify more clauses than exist: the
                            // hard part must be inconsistent.
                            stats.absorb_sat(&engine.stats());
                            return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                        }
                    }
                    // With fresh blocking variables the working formula
                    // gains freedom; re-solve at the same bound. Each
                    // iteration either blocks a new clause or lifts the
                    // bound, so the loop terminates in ≤ 2·|soft| rounds.
                }
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                return finish(MaxSatStatus::Unknown, None, k, None, stats);
            }
        }
    }
}

/// msu3: linear UNSAT→SAT core-guided search, one blocking variable per
/// clause, BDD-encoded global bound.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{Msu3, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(Msu3::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Msu3 {
    inner: LinearCore,
}

impl Default for Msu3 {
    fn default() -> Self {
        Msu3::new()
    }
}

impl Msu3 {
    /// msu3 with the BDD bound encoding.
    #[must_use]
    pub fn new() -> Self {
        Msu3 {
            inner: LinearCore {
                encoding: CardEncoding::Bdd,
                core_at_least_one: false,
                budget: Budget::new(),
                engine_mode: EngineMode::Persistent,
                shared: None,
            },
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.inner.engine_mode = mode;
        self
    }

    /// msu3 with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        Msu3 {
            inner: LinearCore {
                encoding,
                core_at_least_one: false,
                budget: Budget::new(),
                engine_mode: EngineMode::Persistent,
                shared: None,
            },
        }
    }
}

impl MaxSatSolver for Msu3 {
    fn name(&self) -> &'static str {
        "msu3"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.inner.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.inner.shared = Some(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let mut stats = MaxSatStats::default();
        self.inner.solve(wcnf, &mut stats)
    }
}

/// msu2: the msu3 search with the sequential-counter ("linear")
/// cardinality encoding and redundant per-core `Σ b ≥ 1` clauses.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
#[derive(Debug, Clone)]
pub struct Msu2 {
    inner: LinearCore,
}

impl Default for Msu2 {
    fn default() -> Self {
        Msu2::new()
    }
}

impl Msu2 {
    /// msu2 with its default (sequential counter) encoding.
    #[must_use]
    pub fn new() -> Self {
        Msu2 {
            inner: LinearCore {
                encoding: CardEncoding::SequentialCounter,
                core_at_least_one: true,
                budget: Budget::new(),
                engine_mode: EngineMode::Persistent,
                shared: None,
            },
        }
    }
}

impl Msu2 {
    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.inner.engine_mode = mode;
        self
    }
}

impl MaxSatSolver for Msu2 {
    fn name(&self) -> &'static str {
        "msu2"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.inner.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.inner.shared = Some(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let mut stats = MaxSatStats::default();
        self.inner.solve(wcnf, &mut stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    fn solvers() -> Vec<Box<dyn MaxSatSolver>> {
        vec![Box::new(Msu2::new()), Box::new(Msu3::new())]
    }

    #[test]
    fn paper_examples() {
        let e2 =
            unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut s in solvers() {
            let r = s.solve(&e2);
            assert_eq!(r.cost, Some(2), "{}", s.name());
            assert_eq!(r.status, MaxSatStatus::Optimal);
            let m = r.model.unwrap();
            assert_eq!(e2.cost(&m), Some(2), "{} model is suboptimal", s.name());
        }
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 2 2\n1 2 0\n-1 0\n");
        for mut s in solvers() {
            assert_eq!(s.solve(&w).cost, Some(0), "{}", s.name());
        }
    }

    #[test]
    fn partial_infeasible() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        for mut s in solvers() {
            assert_eq!(s.solve(&w).status, MaxSatStatus::Infeasible, "{}", s.name());
        }
    }

    #[test]
    fn agrees_with_oracle_on_random_formulas() {
        let mut seed = 0xA0761D6478BD642Fu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = coremax_cnf::Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut s in solvers() {
                let r = s.solve(&w);
                assert_eq!(r.cost, Some(oracle as u64), "{} wrong on {f}", s.name());
            }
        }
    }

    #[test]
    fn stats_count_cores() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut s = Msu3::new();
        let r = s.solve(&w);
        assert_eq!(r.cost, Some(2));
        assert!(r.stats.cores >= 2);
        assert!(r.stats.blocking_vars >= 2);
    }
}
