//! msu2 and msu3 — the companion-report algorithms (reference \[22\],
//! Marques-Silva & Planes, CoRR abs/0712.0097).
//!
//! Both are core-guided like msu4 but search the bound from below only
//! (UNSAT → SAT): blocking variables are attached to soft clauses as
//! cores are discovered, and a single global `Σ b ≤ k` constraint is
//! kept, with `k` incremented on every refutation. The first satisfiable
//! working formula proves cost `k` optimal. The report's stated
//! improvements over msu1 are (a) at most one blocking variable per
//! clause and (b) a linear cardinality encoding; we expose both axes:
//!
//! - [`Msu3`]: the plain linear UNSAT→SAT search,
//! - [`Msu2`]: the same search with the sequential-counter ("linear")
//!   encoding and the per-core `Σ ≥ 1` redundant constraints.
//!
//! The exact pseudo-code of \[22\] is not reproduced in the DATE'08
//! paper; this reconstruction matches its described properties (see
//! DESIGN.md §6).

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, Var, WcnfFormula};
use coremax_sat::{Budget, SolveOutcome, Solver};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Shared implementation of the msu2/msu3 linear UNSAT→SAT search.
#[derive(Debug, Clone)]
struct LinearCore {
    encoding: CardEncoding,
    core_at_least_one: bool,
    budget: Budget,
}

impl LinearCore {
    fn solve(&self, wcnf: &WcnfFormula, stats: &mut MaxSatStats) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu2/msu3 handle unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);

        let hard: Vec<Vec<Lit>> = wcnf
            .hard_clauses()
            .iter()
            .map(|c| c.lits().to_vec())
            .collect();
        let soft: Vec<Vec<Lit>> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| s.clause.lits().to_vec())
            .collect();
        let num_soft = soft.len();

        let mut blocking: Vec<Option<Lit>> = vec![None; num_soft];
        let mut vb: Vec<Lit> = Vec::new();
        let mut ge1_constraints: Vec<Vec<Lit>> = Vec::new();
        let mut num_vars_base = wcnf.num_vars();
        let mut k: usize = 0; // current lower bound on cost

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      model: Option<coremax_cnf::Assignment>,
                      stats: &mut MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model: model.clone(),
                stats: *stats,
            }
        };

        loop {
            // φW = hard ∪ soft(blocked) ∪ ge1 ∪ CNF(Σ_vb b ≤ k).
            let mut solver = Solver::new();
            solver.ensure_vars(num_vars_base);
            solver.set_budget(child_budget.clone());
            for h in &hard {
                solver.add_clause(h.iter().copied());
            }
            for (i, s) in soft.iter().enumerate() {
                match blocking[i] {
                    Some(b) => {
                        solver.add_clause(s.iter().copied().chain(std::iter::once(b)));
                    }
                    None => {
                        solver.add_clause(s.iter().copied());
                    }
                }
            }
            for c in &ge1_constraints {
                solver.add_clause(c.iter().copied());
            }
            let bound_start = solver.num_original_clauses();
            if !vb.is_empty() && k < vb.len() {
                let mut sink = CnfSink::new(num_vars_base);
                encode_at_most(&vb, k, self.encoding, &mut sink);
                solver.ensure_vars(sink.num_vars());
                let clauses = sink.into_clauses();
                stats.cardinality_clauses += clauses.len() as u64;
                for c in clauses {
                    solver.add_clause(c);
                }
            }

            stats.sat_calls += 1;
            let outcome = solver.solve();
            stats.absorb_sat(solver.stats());
            match outcome {
                SolveOutcome::Unknown => {
                    return finish(MaxSatStatus::Unknown, None, None, stats);
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = solver.model().expect("model after SAT").clone();
                    return finish(MaxSatStatus::Optimal, Some(k), Some(model), stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    stats.cores += 1;
                    let core = solver.unsat_core().expect("core after UNSAT").to_vec();
                    let soft_range = hard.len()..hard.len() + num_soft;
                    let mut touched_soft = false;
                    let mut touched_bound = false;
                    let mut fresh_blockers: Vec<Lit> = Vec::new();
                    for id in &core {
                        let idx = id.index();
                        if soft_range.contains(&idx) {
                            touched_soft = true;
                            let i = idx - hard.len();
                            if blocking[i].is_none() {
                                let b = Lit::positive(Var::new(num_vars_base as u32));
                                num_vars_base += 1;
                                blocking[i] = Some(b);
                                vb.push(b);
                                stats.blocking_vars += 1;
                                fresh_blockers.push(b);
                            }
                        } else if idx >= bound_start || idx >= soft_range.end {
                            touched_bound = true; // bound or ge1 helper clause
                        }
                    }
                    if !touched_soft && !touched_bound {
                        // Pure hard-clause contradiction.
                        return finish(MaxSatStatus::Infeasible, None, None, stats);
                    }
                    // Like msu4's optional line-19 constraint, the ≥1
                    // clause is only sound over the *newly* blocked
                    // clauses (cores are not minimal, so previously
                    // blocked clauses may appear spuriously). Unlike in
                    // msu4 — whose accumulated bounds only tighten — the
                    // bound here loosens as `k` grows, so the clause is
                    // implied only when the refutation did not use the
                    // bound at all.
                    if self.core_at_least_one && !fresh_blockers.is_empty() && !touched_bound {
                        ge1_constraints.push(fresh_blockers.clone());
                        stats.cardinality_clauses += 1;
                    }
                    if fresh_blockers.is_empty() {
                        // The core involves only hard clauses, blocked
                        // clauses and the bound: any assignment of cost ≤ k
                        // would extend to a model of the refuted working
                        // formula, so the refutation proves optimum > k.
                        k += 1;
                        if k > num_soft {
                            // Cannot falsify more clauses than exist: the
                            // hard part must be inconsistent.
                            return finish(MaxSatStatus::Infeasible, None, None, stats);
                        }
                    }
                    // With fresh blocking variables the working formula
                    // gains freedom; re-solve at the same bound. Each
                    // iteration either blocks a new clause or lifts the
                    // bound, so the loop terminates in ≤ 2·|soft| rounds.
                }
            }
            if child_budget.interrupted() {
                return finish(MaxSatStatus::Unknown, None, None, stats);
            }
        }
    }
}

/// msu3: linear UNSAT→SAT core-guided search, one blocking variable per
/// clause, BDD-encoded global bound.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{Msu3, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(Msu3::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Msu3 {
    inner: LinearCore,
}

impl Default for Msu3 {
    fn default() -> Self {
        Msu3::new()
    }
}

impl Msu3 {
    /// msu3 with the BDD bound encoding.
    #[must_use]
    pub fn new() -> Self {
        Msu3 {
            inner: LinearCore {
                encoding: CardEncoding::Bdd,
                core_at_least_one: false,
                budget: Budget::new(),
            },
        }
    }

    /// msu3 with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        Msu3 {
            inner: LinearCore {
                encoding,
                core_at_least_one: false,
                budget: Budget::new(),
            },
        }
    }
}

impl MaxSatSolver for Msu3 {
    fn name(&self) -> &'static str {
        "msu3"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.inner.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let mut stats = MaxSatStats::default();
        self.inner.solve(wcnf, &mut stats)
    }
}

/// msu2: the msu3 search with the sequential-counter ("linear")
/// cardinality encoding and redundant per-core `Σ b ≥ 1` clauses.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
#[derive(Debug, Clone)]
pub struct Msu2 {
    inner: LinearCore,
}

impl Default for Msu2 {
    fn default() -> Self {
        Msu2::new()
    }
}

impl Msu2 {
    /// msu2 with its default (sequential counter) encoding.
    #[must_use]
    pub fn new() -> Self {
        Msu2 {
            inner: LinearCore {
                encoding: CardEncoding::SequentialCounter,
                core_at_least_one: true,
                budget: Budget::new(),
            },
        }
    }
}

impl MaxSatSolver for Msu2 {
    fn name(&self) -> &'static str {
        "msu2"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.inner.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let mut stats = MaxSatStats::default();
        self.inner.solve(wcnf, &mut stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    fn solvers() -> Vec<Box<dyn MaxSatSolver>> {
        vec![Box::new(Msu2::new()), Box::new(Msu3::new())]
    }

    #[test]
    fn paper_examples() {
        let e2 =
            unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut s in solvers() {
            let r = s.solve(&e2);
            assert_eq!(r.cost, Some(2), "{}", s.name());
            assert_eq!(r.status, MaxSatStatus::Optimal);
            let m = r.model.unwrap();
            assert_eq!(e2.cost(&m), Some(2), "{} model is suboptimal", s.name());
        }
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 2 2\n1 2 0\n-1 0\n");
        for mut s in solvers() {
            assert_eq!(s.solve(&w).cost, Some(0), "{}", s.name());
        }
    }

    #[test]
    fn partial_infeasible() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        for mut s in solvers() {
            assert_eq!(s.solve(&w).status, MaxSatStatus::Infeasible, "{}", s.name());
        }
    }

    #[test]
    fn agrees_with_oracle_on_random_formulas() {
        let mut seed = 0xA0761D6478BD642Fu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut s in solvers() {
                let r = s.solve(&w);
                assert_eq!(r.cost, Some(oracle as u64), "{} wrong on {f}", s.name());
            }
        }
    }

    #[test]
    fn stats_count_cores() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut s = Msu3::new();
        let r = s.solve(&w);
        assert_eq!(r.cost, Some(2));
        assert!(r.stats.cores >= 2);
        assert!(r.stats.blocking_vars >= 2);
    }
}
