//! "MaxSAT as iterated SAT" baselines: model-improving linear search
//! and binary search on the cost bound.
//!
//! Section 2 of the paper notes that converting MaxSAT into a sequence
//! of SAT problems generally "does not perform well" compared with
//! branch and bound — except on industrial instances, which is exactly
//! the regime msu4 targets. These two solvers make that comparison
//! reproducible: both attach a blocking variable to *every* soft clause
//! up front (so the search space blow-up of §2.2 applies) and differ
//! only in how the bound on `Σ b` moves.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Assignment, Lit, Var, WcnfFormula};
use coremax_sat::{Budget, SolveOutcome, Solver};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Shared scaffolding: working formula with one blocking variable per
/// soft clause.
struct Relaxed {
    clauses: Vec<Vec<Lit>>,
    blockers: Vec<Lit>,
    num_vars: usize,
}

fn relax(wcnf: &WcnfFormula) -> Relaxed {
    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(wcnf.num_clauses());
    for h in wcnf.hard_clauses() {
        clauses.push(h.lits().to_vec());
    }
    let mut next = wcnf.num_vars() as u32;
    let mut blockers = Vec::with_capacity(wcnf.num_soft());
    for soft in wcnf.soft_clauses() {
        let b = Lit::positive(Var::new(next));
        next += 1;
        let mut c = soft.clause.lits().to_vec();
        c.push(b);
        clauses.push(c);
        blockers.push(b);
    }
    Relaxed {
        clauses,
        blockers,
        num_vars: next as usize,
    }
}

/// Builds a solver over the relaxed clauses plus `Σ b ≤ bound`.
fn solve_with_bound(
    relaxed: &Relaxed,
    bound: Option<usize>,
    encoding: CardEncoding,
    budget: &Budget,
    stats: &mut MaxSatStats,
) -> (SolveOutcome, Option<Assignment>) {
    let mut solver = Solver::new();
    solver.ensure_vars(relaxed.num_vars);
    solver.set_budget(budget.clone());
    for c in &relaxed.clauses {
        solver.add_clause(c.iter().copied());
    }
    if let Some(k) = bound {
        let mut sink = CnfSink::new(relaxed.num_vars);
        encode_at_most(&relaxed.blockers, k, encoding, &mut sink);
        solver.ensure_vars(sink.num_vars());
        let clauses = sink.into_clauses();
        stats.cardinality_clauses += clauses.len() as u64;
        for c in clauses {
            solver.add_clause(c);
        }
    }
    stats.sat_calls += 1;
    let outcome = solver.solve();
    stats.absorb_sat(solver.stats());
    let model = solver.model().cloned();
    (outcome, model)
}

fn model_cost(wcnf: &WcnfFormula, model: &Assignment) -> usize {
    // All hard clauses are satisfied by construction; count actually
    // falsified soft clauses rather than raised blockers.
    wcnf.soft_clauses()
        .iter()
        .filter(|s| !s.clause.is_satisfied_by(model))
        .count()
}

/// Model-improving linear search ("SAT–UNSAT"): find any model, then
/// repeatedly demand strictly lower cost until UNSAT.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{LinearSearchSat, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(LinearSearchSat::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct LinearSearchSat {
    encoding: CardEncoding,
    budget: Budget,
}

impl Default for LinearSearchSat {
    fn default() -> Self {
        LinearSearchSat::new()
    }
}

impl LinearSearchSat {
    /// Linear search with the sorting-network encoding.
    #[must_use]
    pub fn new() -> Self {
        LinearSearchSat {
            encoding: CardEncoding::SortingNetwork,
            budget: Budget::new(),
        }
    }

    /// Linear search with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        LinearSearchSat {
            encoding,
            budget: Budget::new(),
        }
    }
}

impl MaxSatSolver for LinearSearchSat {
    fn name(&self) -> &'static str {
        "linear-sat"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "linear-sat handles unweighted (partial) MaxSAT"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();
        let relaxed = relax(wcnf);

        let mut best: Option<(Assignment, usize)> = None;
        let mut bound: Option<usize> = None;
        loop {
            let (outcome, model) =
                solve_with_bound(&relaxed, bound, self.encoding, &child_budget, &mut stats);
            match outcome {
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let m = model.expect("model after SAT");
                    let cost = model_cost(wcnf, &m);
                    best = Some((m, cost));
                    if cost == 0 {
                        break;
                    }
                    bound = Some(cost - 1);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    break;
                }
                SolveOutcome::Unknown => {
                    stats.wall_time = start.elapsed();
                    return MaxSatSolution {
                        status: MaxSatStatus::Unknown,
                        cost: best.as_ref().map(|(_, c)| *c as u64),
                        model: best.map(|(m, _)| m),
                        stats,
                    };
                }
            }
        }
        stats.wall_time = start.elapsed();
        match best {
            Some((m, cost)) => MaxSatSolution {
                status: MaxSatStatus::Optimal,
                cost: Some(cost as u64),
                model: Some(m),
                stats,
            },
            None => MaxSatSolution::infeasible(stats),
        }
    }
}

/// Binary search on the cost bound between 0 and `|soft|`.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
#[derive(Debug, Clone)]
pub struct BinarySearchSat {
    encoding: CardEncoding,
    budget: Budget,
}

impl Default for BinarySearchSat {
    fn default() -> Self {
        BinarySearchSat::new()
    }
}

impl BinarySearchSat {
    /// Binary search with the sorting-network encoding.
    #[must_use]
    pub fn new() -> Self {
        BinarySearchSat {
            encoding: CardEncoding::SortingNetwork,
            budget: Budget::new(),
        }
    }

    /// Binary search with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        BinarySearchSat {
            encoding,
            budget: Budget::new(),
        }
    }
}

impl MaxSatSolver for BinarySearchSat {
    fn name(&self) -> &'static str {
        "binary-sat"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "binary-sat handles unweighted (partial) MaxSAT"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();
        let relaxed = relax(wcnf);

        // Feasibility first (bound = |soft| is no bound at all).
        let (outcome, model) =
            solve_with_bound(&relaxed, None, self.encoding, &child_budget, &mut stats);
        let mut best = match outcome {
            SolveOutcome::Unsat => {
                stats.wall_time = start.elapsed();
                return MaxSatSolution::infeasible(stats);
            }
            SolveOutcome::Unknown => {
                stats.wall_time = start.elapsed();
                return MaxSatSolution {
                    status: MaxSatStatus::Unknown,
                    cost: None,
                    model: None,
                    stats,
                };
            }
            SolveOutcome::Sat => {
                stats.sat_iterations += 1;
                let m = model.expect("model after SAT");
                let cost = model_cost(wcnf, &m);
                (m, cost)
            }
        };

        let mut lo = 0usize; // smallest cost not yet excluded
        let mut hi = best.1; // best.1 is attainable
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (outcome, model) = solve_with_bound(
                &relaxed,
                Some(mid),
                self.encoding,
                &child_budget,
                &mut stats,
            );
            match outcome {
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let m = model.expect("model after SAT");
                    let cost = model_cost(wcnf, &m);
                    debug_assert!(cost <= mid);
                    hi = cost.min(mid);
                    best = (m, hi);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    lo = mid + 1;
                }
                SolveOutcome::Unknown => {
                    stats.wall_time = start.elapsed();
                    return MaxSatSolution {
                        status: MaxSatStatus::Unknown,
                        cost: Some(best.1 as u64),
                        model: Some(best.0),
                        stats,
                    };
                }
            }
        }
        stats.wall_time = start.elapsed();
        MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(best.1 as u64),
            model: Some(best.0),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    fn both() -> Vec<Box<dyn MaxSatSolver>> {
        vec![
            Box::new(LinearSearchSat::new()),
            Box::new(BinarySearchSat::new()),
        ]
    }

    #[test]
    fn paper_example2() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut s in both() {
            let r = s.solve(&w);
            assert_eq!(r.cost, Some(2), "{}", s.name());
            assert_eq!(r.status, MaxSatStatus::Optimal);
        }
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 1 1\n1 0\n");
        for mut s in both() {
            assert_eq!(s.solve(&w).cost, Some(0), "{}", s.name());
        }
    }

    #[test]
    fn infeasible_hard() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        for mut s in both() {
            assert_eq!(s.solve(&w).status, MaxSatStatus::Infeasible, "{}", s.name());
        }
    }

    #[test]
    fn agrees_with_oracle() {
        let mut seed = 0xE7037ED1A0B428DBu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut s in both() {
                let r = s.solve(&w);
                assert_eq!(r.cost, Some(oracle as u64), "{} wrong on {f}", s.name());
                let m = r.model.unwrap();
                assert_eq!(w.cost(&m), r.cost);
            }
        }
    }

    #[test]
    fn binary_search_uses_fewer_calls_on_wide_ranges() {
        // 12 mutually-exclusive units: optimum 11 falsified.
        let mut f = coremax_cnf::CnfFormula::new();
        let v = f.new_var();
        for i in 0..12 {
            f.add_clause([Lit::new(v, i == 0)]);
        }
        let w = WcnfFormula::from_cnf_all_soft(&f);
        let mut lin = LinearSearchSat::new();
        let mut bin = BinarySearchSat::new();
        let rl = lin.solve(&w);
        let rb = bin.solve(&w);
        assert_eq!(rl.cost, rb.cost);
        assert!(rb.stats.sat_calls <= rl.stats.sat_calls + 4);
    }
}
