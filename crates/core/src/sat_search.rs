//! "MaxSAT as iterated SAT" baselines: model-improving linear search
//! and binary search on the cost bound.
//!
//! Section 2 of the paper notes that converting MaxSAT into a sequence
//! of SAT problems generally "does not perform well" compared with
//! branch and bound — except on industrial instances, which is exactly
//! the regime msu4 targets. These two solvers make that comparison
//! reproducible: both attach a blocking variable to *every* soft clause
//! up front (so the search space blow-up of §2.2 applies) and differ
//! only in how the bound on `Σ b` moves.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Assignment, Lit, WcnfFormula};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Loads the working formula into `engine`: hard clauses verbatim, one
/// blocking variable appended to every soft clause. Returns the
/// blocking literals.
fn load_relaxed(engine: &mut IncrementalSolver, wcnf: &WcnfFormula) -> Vec<Lit> {
    engine.ensure_vars(wcnf.num_vars());
    for h in wcnf.hard_clauses() {
        engine.add_clause(h.lits().iter().copied());
    }
    let mut blockers = Vec::with_capacity(wcnf.num_soft());
    for soft in wcnf.soft_clauses() {
        let b = Lit::positive(engine.new_var());
        let mut c = soft.clause.lits().to_vec();
        c.push(b);
        engine.add_clause(c);
        blockers.push(b);
    }
    blockers
}

fn model_cost(wcnf: &WcnfFormula, model: &Assignment) -> usize {
    // All hard clauses are satisfied by construction; count actually
    // falsified soft clauses rather than raised blockers.
    wcnf.soft_clauses()
        .iter()
        .filter(|s| !s.clause.is_satisfied_by(model))
        .count()
}

/// Model-improving linear search ("SAT–UNSAT"): find any model, then
/// repeatedly demand strictly lower cost until UNSAT.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{LinearSearchSat, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(LinearSearchSat::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct LinearSearchSat {
    encoding: CardEncoding,
    budget: Budget,
    engine_mode: EngineMode,
}

impl Default for LinearSearchSat {
    fn default() -> Self {
        LinearSearchSat::new()
    }
}

impl LinearSearchSat {
    /// Linear search with the sorting-network encoding.
    #[must_use]
    pub fn new() -> Self {
        LinearSearchSat {
            encoding: CardEncoding::SortingNetwork,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// Linear search with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        LinearSearchSat {
            encoding,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

impl MaxSatSolver for LinearSearchSat {
    fn name(&self) -> &'static str {
        "linear-sat"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "linear-sat handles unweighted (partial) MaxSAT"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        // One engine for the whole descent. The bound only ever
        // tightens (`Σ b ≤ cost − 1` with strictly decreasing cost), so
        // each encoding strictly implies the previous and all bound
        // clauses can be added permanently — no gating needed.
        let mut engine = IncrementalSolver::with_mode(self.engine_mode);
        engine.set_budget(child_budget.clone());
        let blockers = load_relaxed(&mut engine, wcnf);

        let mut best: Option<(Assignment, usize)> = None;
        loop {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let m = engine.model().expect("model after SAT").clone();
                    let cost = model_cost(wcnf, &m);
                    best = Some((m, cost));
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost: cost as u64 });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: 0,
                            ub: Some(cost as u64),
                        });
                    }
                    if cost == 0 {
                        break;
                    }
                    let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                    let mut sink = CnfSink::new(engine.num_vars());
                    encode_at_most(&blockers, cost - 1, self.encoding, &mut sink);
                    engine.ensure_vars(sink.num_vars());
                    let clauses = sink.into_clauses();
                    stats.cardinality_clauses += clauses.len() as u64;
                    let clauses_added = clauses.len() as u64;
                    for c in clauses {
                        engine.add_clause(c);
                    }
                    encode_span.finish(&mut stats.phase);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                            blocking_vars: 0,
                            clauses: clauses_added,
                        });
                    }
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    break;
                }
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    stats.wall_time = start.elapsed();
                    // Linear descent proves no lower bound until the
                    // final UNSAT, so only the incumbent side of the
                    // interval is non-trivial here.
                    return MaxSatSolution {
                        status: MaxSatStatus::Unknown,
                        cost: best.as_ref().map(|(_, c)| *c as u64),
                        model: best.map(|(m, _)| m),
                        lower_bound: 0,
                        stats,
                    };
                }
            }
        }
        stats.absorb_sat(&engine.stats());
        stats.wall_time = start.elapsed();
        match best {
            Some((m, cost)) => MaxSatSolution {
                status: MaxSatStatus::Optimal,
                cost: Some(cost as u64),
                model: Some(m),
                lower_bound: cost as u64,
                stats,
            },
            None => MaxSatSolution::infeasible(stats),
        }
    }
}

/// Binary search on the cost bound between 0 and `|soft|`.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
#[derive(Debug, Clone)]
pub struct BinarySearchSat {
    encoding: CardEncoding,
    budget: Budget,
    engine_mode: EngineMode,
}

impl Default for BinarySearchSat {
    fn default() -> Self {
        BinarySearchSat::new()
    }
}

impl BinarySearchSat {
    /// Binary search with the sorting-network encoding.
    #[must_use]
    pub fn new() -> Self {
        BinarySearchSat {
            encoding: CardEncoding::SortingNetwork,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// Binary search with an explicit bound encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        BinarySearchSat {
            encoding,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

impl MaxSatSolver for BinarySearchSat {
    fn name(&self) -> &'static str {
        "binary-sat"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "binary-sat handles unweighted (partial) MaxSAT"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        // One engine for the whole search. Unlike the linear descent
        // the probed bound moves in both directions, so each `Σ b ≤
        // mid` encoding carries a gate literal `t` on every clause:
        // assuming `¬t` activates the bound, the unit `t` retires it
        // for good once the search moves on.
        let mut engine = IncrementalSolver::with_mode(self.engine_mode);
        engine.set_budget(child_budget.clone());
        let blockers = load_relaxed(&mut engine, wcnf);

        // Feasibility first (no bound at all).
        stats.sat_calls += 1;
        let mut best = match engine.solve(&[]) {
            SolveOutcome::Unsat => {
                stats.absorb_sat(&engine.stats());
                stats.wall_time = start.elapsed();
                return MaxSatSolution::infeasible(stats);
            }
            SolveOutcome::Unknown => {
                stats.absorb_sat(&engine.stats());
                stats.wall_time = start.elapsed();
                return MaxSatSolution {
                    status: MaxSatStatus::Unknown,
                    cost: None,
                    model: None,
                    lower_bound: 0,
                    stats,
                };
            }
            SolveOutcome::Sat => {
                stats.sat_iterations += 1;
                let m = engine.model().expect("model after SAT").clone();
                let cost = model_cost(wcnf, &m);
                if coremax_obs::tracing_enabled() {
                    coremax_obs::emit(coremax_obs::Event::Incumbent { cost: cost as u64 });
                    coremax_obs::emit(coremax_obs::Event::Bounds {
                        lb: 0,
                        ub: Some(cost as u64),
                    });
                }
                (m, cost)
            }
        };

        let mut lo = 0usize; // smallest cost not yet excluded
        let mut hi = best.1; // best.1 is attainable
        let mut gate: Option<Lit> = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // The previous probe's bound is stale either way (SAT
            // shrank hi below it, UNSAT moved lo above it): retire it
            // and install the gated encoding for `mid`.
            if let Some(t) = gate.take() {
                engine.add_clause([t]);
            }
            let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
            let t = Lit::positive(engine.new_var());
            let mut sink = CnfSink::new(engine.num_vars());
            encode_at_most(&blockers, mid, self.encoding, &mut sink);
            engine.ensure_vars(sink.num_vars());
            let clauses = sink.into_clauses();
            stats.cardinality_clauses += clauses.len() as u64;
            let clauses_added = clauses.len() as u64;
            for mut c in clauses {
                c.push(t);
                engine.add_clause(c);
            }
            gate = Some(t);
            encode_span.finish(&mut stats.phase);
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                    blocking_vars: 0,
                    clauses: clauses_added,
                });
            }

            stats.sat_calls += 1;
            match engine.solve(&[!t]) {
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let m = engine.model().expect("model after SAT").clone();
                    let cost = model_cost(wcnf, &m);
                    debug_assert!(cost <= mid);
                    hi = cost.min(mid);
                    best = (m, hi);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost: hi as u64 });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: lo as u64,
                            ub: Some(hi as u64),
                        });
                    }
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    lo = mid + 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: lo as u64,
                            ub: Some(hi as u64),
                        });
                    }
                }
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    stats.wall_time = start.elapsed();
                    // `lo` is the smallest cost not yet excluded: every
                    // cost below it was refuted, so it is a certified
                    // lower bound.
                    return MaxSatSolution {
                        status: MaxSatStatus::Unknown,
                        cost: Some(best.1 as u64),
                        model: Some(best.0),
                        lower_bound: lo as u64,
                        stats,
                    };
                }
            }
        }
        stats.absorb_sat(&engine.stats());
        stats.wall_time = start.elapsed();
        MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(best.1 as u64),
            model: Some(best.0),
            lower_bound: best.1 as u64,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{dimacs, Var};
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    fn both() -> Vec<Box<dyn MaxSatSolver>> {
        vec![
            Box::new(LinearSearchSat::new()),
            Box::new(BinarySearchSat::new()),
        ]
    }

    #[test]
    fn paper_example2() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut s in both() {
            let r = s.solve(&w);
            assert_eq!(r.cost, Some(2), "{}", s.name());
            assert_eq!(r.status, MaxSatStatus::Optimal);
        }
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 1 1\n1 0\n");
        for mut s in both() {
            assert_eq!(s.solve(&w).cost, Some(0), "{}", s.name());
        }
    }

    #[test]
    fn infeasible_hard() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        for mut s in both() {
            assert_eq!(s.solve(&w).status, MaxSatStatus::Infeasible, "{}", s.name());
        }
    }

    #[test]
    fn agrees_with_oracle() {
        let mut seed = 0xE7037ED1A0B428DBu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut s in both() {
                let r = s.solve(&w);
                assert_eq!(r.cost, Some(oracle as u64), "{} wrong on {f}", s.name());
                let m = r.model.unwrap();
                assert_eq!(w.cost(&m), r.cost);
            }
        }
    }

    #[test]
    fn rebuild_mode_agrees_with_persistent() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mode in [EngineMode::Persistent, EngineMode::Rebuild] {
            let rl = LinearSearchSat::new().with_engine_mode(mode).solve(&w);
            let rb = BinarySearchSat::new().with_engine_mode(mode).solve(&w);
            assert_eq!(rl.cost, Some(2), "linear under {mode:?}");
            assert_eq!(rb.cost, Some(2), "binary under {mode:?}");
        }
    }

    #[test]
    fn binary_search_uses_fewer_calls_on_wide_ranges() {
        // 12 mutually-exclusive units: optimum 11 falsified.
        let mut f = coremax_cnf::CnfFormula::new();
        let v = f.new_var();
        for i in 0..12 {
            f.add_clause([Lit::new(v, i == 0)]);
        }
        let w = WcnfFormula::from_cnf_all_soft(&f);
        let mut lin = LinearSearchSat::new();
        let mut bin = BinarySearchSat::new();
        let rl = lin.solve(&w);
        let rb = bin.solve(&w);
        assert_eq!(rl.cost, rb.cost);
        assert!(rb.stats.sat_calls <= rl.stats.sat_calls + 4);
    }
}
