//! The msu4 algorithm — Algorithm 1 of the paper.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SharedContext, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Configuration of the [`Msu4`] solver.
#[derive(Debug, Clone)]
pub struct Msu4Config {
    /// CNF encoding used for the cardinality constraints. The paper's
    /// **v1** is [`CardEncoding::Bdd`], **v2** is
    /// [`CardEncoding::SortingNetwork`].
    pub encoding: CardEncoding,
    /// Whether to add the optional `Σ_{i∈core} bᵢ ≥ 1` constraint when a
    /// core is blocked (Algorithm 1, line 19). The paper notes it "is in
    /// fact optional, but experiments suggest that it is most often
    /// useful"; it is on by default and an ablation bench toggles it.
    pub core_at_least_one: bool,
    /// Whether to shrink each extracted core with deletion-based
    /// minimisation ([`crate::minimize_core`]) before blocking. Fewer
    /// blocking variables per core at the price of one SAT call per
    /// core clause — the paper's closing remark ties msu4's efficiency
    /// to small cores, and this knob probes that dependence.
    pub minimize_cores: bool,
}

impl Default for Msu4Config {
    fn default() -> Self {
        Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: false,
        }
    }
}

/// The msu4 core-guided MaxSAT solver (Marques-Silva & Planes, DATE'08).
///
/// msu4 maintains a working formula φW. Each SAT-solver call either
/// *refutes* φW — then every not-yet-blocked soft clause in the
/// unsatisfiable core receives a blocking variable, raising the lower
/// bound on the optimum cost — or *satisfies* it — then the number of
/// blocking variables assigned 1 gives an upper bound, and a cardinality
/// constraint demands the next model do strictly better. The algorithm
/// stops when the bounds meet, or when a core contains no unblocked soft
/// clause (the current bound is then provably optimal).
///
/// Unlike msu1 (Fu & Malik), at most **one** blocking variable is ever
/// attached to a clause.
///
/// # Input restrictions
///
/// Supports *unweighted* (partial) MaxSAT: all soft clauses must have
/// weight 1. Hard clauses are fully supported (they are never blocked;
/// a core of hard clauses only means the instance is infeasible).
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics if a soft clause has weight ≠ 1.
///
/// # Examples
///
/// ```
/// use coremax::{Msu4, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// let solution = Msu4::v2().solve(&w);
/// assert_eq!(solution.cost, Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Msu4 {
    config: Msu4Config,
    budget: Budget,
    engine_mode: EngineMode,
    shared: Option<SharedContext>,
}

impl Msu4 {
    /// msu4 with the default (v2 / sorting network) configuration.
    #[must_use]
    pub fn new() -> Self {
        Msu4::default()
    }

    /// The paper's **v1**: BDD cardinality encoding.
    #[must_use]
    pub fn v1() -> Self {
        Msu4::with_config(Msu4Config {
            encoding: CardEncoding::Bdd,
            ..Msu4Config::default()
        })
    }

    /// The paper's **v2**: sorting-network cardinality encoding.
    #[must_use]
    pub fn v2() -> Self {
        Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            ..Msu4Config::default()
        })
    }

    /// msu4 with an explicit configuration.
    #[must_use]
    pub fn with_config(config: Msu4Config) -> Self {
        Msu4 {
            config,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
            shared: None,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &Msu4Config {
        &self.config
    }
}

impl MaxSatSolver for Msu4 {
    fn name(&self) -> &'static str {
        match self.config.encoding {
            CardEncoding::Bdd => "msu4-v1",
            CardEncoding::SortingNetwork => "msu4-v2",
            _ => "msu4",
        }
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        self.shared = Some(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu4 handles unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let num_soft = wcnf.num_soft();

        // Bounds in *cost* space: lb = the paper's νU (each disjointly
        // refuted core forces one more falsified clause, Prop. 1);
        // ub = the paper's νBV (best model found, Prop. 2).
        let mut lb: usize = 0;
        let mut ub: usize = num_soft;
        let mut best_model: Option<coremax_cnf::Assignment> = None;

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      lower_bound: usize,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model,
                lower_bound: lower_bound as u64,
                stats,
            }
        };

        // One engine for the whole run.
        let mut engine =
            IncrementalSolver::with_mode_and_shared(self.engine_mode, self.shared.clone());
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause_shared(h.lits().iter().copied());
        }

        // Feasibility pre-check: cores are not guaranteed minimal, so a
        // hard-only contradiction could otherwise hide inside a mixed
        // core and the termination argument of Algorithm 1 (which assumes
        // plain MaxSAT) would return a bogus optimum. Running it on the
        // same engine seeds the clause database before the softs arrive.
        let mut hard_model: Option<coremax_cnf::Assignment> = None;
        if wcnf.num_hard() > 0 {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Unsat => {
                    stats.absorb_sat(&engine.stats());
                    return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                }
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    return finish(MaxSatStatus::Unknown, None, 0, None, stats);
                }
                SolveOutcome::Sat => {
                    hard_model = engine.model().cloned();
                }
            }
        }

        // Selector per soft clause; an *unblocked* clause is one whose
        // selector assumption is still active, and blocking it merely
        // deactivates the assumption (the selector is the paper's
        // blocking variable — at most one per clause, by construction).
        let handles: Vec<SoftId> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| engine.add_soft(s.clause.lits().iter().copied()))
            .collect();
        // All blocking literals, in introduction order (the paper's VB).
        let mut vb: Vec<Lit> = Vec::new();
        // The *current* Σ_vb b ≤ ub−1 bound. Superseded bounds are
        // implied by the tightest one, so φW keeps only the latest —
        // Algorithm 1 accumulates them, but keeping stale encodings
        // active changes neither models nor correctness and only slows
        // propagation. Each version is therefore gated behind a fresh
        // activation literal and retired (unit `t`) when replaced.
        let mut bound_gate: Option<Lit> = None;

        loop {
            let gate_assumptions: Vec<Lit> = bound_gate.iter().map(|&t| !t).collect();
            stats.sat_calls += 1;
            match engine.solve(&gate_assumptions) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    // Certified interval: lb from disjoint cores, ub from
                    // the best model found (the hard-feasibility model is
                    // a valid incumbent when no better one exists).
                    let incumbent = best_model.or_else(|| hard_model.clone());
                    let cost = incumbent.as_ref().map(|m| {
                        wcnf.soft_clauses()
                            .iter()
                            .filter(|s| !s.clause.is_satisfied_by(m))
                            .count()
                    });
                    return finish(MaxSatStatus::Unknown, cost, lb, incumbent, stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    // Independent of all assumptions: only the hard
                    // clauses can be contradictory (selectors and bound
                    // gates are free at the clause level, ge1 clauses are
                    // satisfiable on their own) — and the pre-check
                    // already ran, so this is a late hard refutation.
                    if engine.formula_refuted() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    stats.cores += 1;
                    let core: Vec<Lit> = if self.config.minimize_cores {
                        minimize_failed_assumptions(&mut engine, &child_budget)
                    } else {
                        engine.failed_assumptions().to_vec()
                    };
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: core.len() as u64,
                            weight: 1,
                        });
                    }
                    // φI: unblocked soft clauses in the core (the paper's
                    // "initial clauses"). Failed soft assumptions are
                    // active by construction, so all of them are fresh.
                    let new_blocked: Vec<SoftId> = core
                        .iter()
                        .filter_map(|&a| {
                            handles
                                .iter()
                                .find(|&&id| engine.assumption(id) == a && engine.is_active(id))
                                .copied()
                        })
                        .collect();
                    if new_blocked.is_empty() {
                        // Line 21–22: the core can be re-derived no matter
                        // which further clauses are blocked, so the current
                        // upper bound is the optimum.
                        debug_assert!(best_model.is_some() || ub == num_soft);
                        stats.absorb_sat(&engine.stats());
                        let model = best_model.or_else(|| hard_model.clone());
                        return finish(MaxSatStatus::Optimal, Some(ub), ub, model, stats);
                    }
                    // Lines 17–20: attach blocking variables and (optionally)
                    // require at least one of them to be used.
                    let mut core_blockers = Vec::with_capacity(new_blocked.len());
                    for id in new_blocked {
                        engine.deactivate(id);
                        let b = engine.selector(id);
                        vb.push(b);
                        core_blockers.push(b);
                        stats.blocking_vars += 1;
                    }
                    if self.config.core_at_least_one {
                        engine.add_clause(core_blockers.iter().copied());
                        stats.cardinality_clauses += 1;
                    }
                    // Lines 23–24: every such core lifts the lower bound.
                    lb += 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: lb as u64,
                            ub: best_model.is_some().then_some(ub as u64),
                        });
                    }
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = engine.model().expect("model after SAT").clone();
                    // Line 26 uses ν = blocking variables assigned 1; we
                    // tighten it to the model's *actual* number of
                    // falsified soft clauses f ≤ ν (a model may raise a
                    // blocking variable of a clause it satisfies anyway).
                    // Soundness is unchanged: any assignment of cost
                    // ≤ f−1 extends to a model of φW with Σb ≤ f−1, so
                    // the strengthened constraint excludes no optimum.
                    // Without this, descent proceeds one wasted blocking
                    // variable at a time, re-encoding the cardinality
                    // network per step (see DESIGN.md §4).
                    let f = wcnf
                        .soft_clauses()
                        .iter()
                        .filter(|s| !s.clause.is_satisfied_by(&model))
                        .count();
                    if f < ub || best_model.is_none() {
                        ub = f;
                        best_model = Some(model);
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::Incumbent { cost: ub as u64 });
                            coremax_obs::emit(coremax_obs::Event::Bounds {
                                lb: lb as u64,
                                ub: Some(ub as u64),
                            });
                        }
                    }
                    if ub == 0 {
                        // No soft clause needed blocking: cost 0 optimum.
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Optimal, Some(0), 0, best_model, stats);
                    }
                    // Lines 30–31: demand strictly fewer blocking vars.
                    // The previous bound version is retired for good and
                    // the new, tighter one activated under a fresh gate.
                    let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                    if let Some(t) = bound_gate.take() {
                        engine.add_clause([t]);
                    }
                    let t = Lit::positive(engine.new_var());
                    let mut sink = CnfSink::new(engine.num_vars());
                    encode_at_most(&vb, ub - 1, self.config.encoding, &mut sink);
                    engine.ensure_vars(sink.num_vars());
                    let new_clauses = sink.into_clauses();
                    stats.cardinality_clauses += new_clauses.len() as u64;
                    let clauses_added = new_clauses.len() as u64;
                    for c in new_clauses {
                        engine.add_clause(c.into_iter().chain(std::iter::once(t)));
                    }
                    bound_gate = Some(t);
                    encode_span.finish(&mut stats.phase);
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                            blocking_vars: 0,
                            clauses: clauses_added,
                        });
                    }
                }
            }
            // Line 32: bounds met.
            if lb >= ub {
                stats.absorb_sat(&engine.stats());
                let model = best_model.or_else(|| hard_model.clone());
                return finish(MaxSatStatus::Optimal, Some(ub), ub, model, stats);
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                let incumbent = best_model.or_else(|| hard_model.clone());
                let cost = incumbent.as_ref().map(|m| {
                    wcnf.soft_clauses()
                        .iter()
                        .filter(|s| !s.clause.is_satisfied_by(m))
                        .count()
                });
                return finish(MaxSatStatus::Unknown, cost, lb, incumbent, stats);
            }
        }
    }
}

/// Deletion-based minimisation of the engine's current failed-assumption
/// core: drop one literal, re-solve under the remaining assumptions, and
/// keep the shrunken failed subset whenever the candidate is still
/// UNSAT. The incremental counterpart of [`crate::minimize_core`] — one
/// assumption-based call per candidate on the *same* engine, instead of
/// a fresh solver per clause-subset probe.
fn minimize_failed_assumptions(engine: &mut IncrementalSolver, budget: &Budget) -> Vec<Lit> {
    let mut core: Vec<Lit> = engine.failed_assumptions().to_vec();
    let mut i = 0;
    while i < core.len() {
        if budget.interrupted() {
            break;
        }
        let mut candidate = core.clone();
        candidate.remove(i);
        match engine.solve_exact(&candidate) {
            SolveOutcome::Unsat if !engine.formula_refuted() => {
                // Still UNSAT without it: adopt the failed subset of the
                // candidate (often several literals smaller at once).
                let failed: Vec<Lit> = engine.failed_assumptions().to_vec();
                core.retain(|l| failed.contains(l));
            }
            // SAT, Unknown, or a formula-level refutation (cannot happen
            // after the feasibility pre-check): the literal stays.
            _ => i += 1,
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn example1_of_the_paper() {
        let w = unweighted("p cnf 2 3\n1 0\n2 -1 0\n-2 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal);
            assert_eq!(s.cost, Some(1));
            assert_eq!(s.num_satisfied(&w), Some(2));
        }
    }

    #[test]
    fn example2_of_the_paper() {
        // §3.3: optimum 6 of 8 (two clauses falsified).
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal);
            assert_eq!(s.cost, Some(2));
            assert_eq!(s.num_satisfied(&w), Some(6));
            // The model must actually attain the claimed cost.
            let m = s.model.as_ref().unwrap();
            assert_eq!(w.cost(m), Some(2));
        }
    }

    #[test]
    fn satisfiable_formula_costs_zero() {
        let w = unweighted("p cnf 3 3\n1 2 0\n-1 3 0\n-3 2 0\n");
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
    }

    #[test]
    fn all_clauses_conflicting() {
        // (x)(¬x)(y)(¬y): cost 2.
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.cost, Some(2), "{}", solver.name());
        }
    }

    #[test]
    fn partial_maxsat_hard_clauses_respected() {
        // Hard: x1. Soft: ¬x1, x2, ¬x2 → optimum cost 2? No: falsify ¬x1
        // (forced) and one of x2/¬x2 → cost 2.
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_hard([Lit::positive(x1)]);
        w.add_soft([Lit::negative(x1)], 1);
        w.add_soft([Lit::positive(x2)], 1);
        w.add_soft([Lit::negative(x2)], 1);
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(2));
        let m = s.model.unwrap();
        assert_eq!(m.value(x1), Some(true));
    }

    #[test]
    fn infeasible_hard_clauses() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn weighted_input_rejected() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 3);
        let _ = Msu4::v2().solve(&w);
    }

    #[test]
    fn optional_constraint_off_still_correct() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let mut solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: false,
            minimize_cores: false,
        });
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(2));
    }

    #[test]
    fn agrees_with_oracle_on_random_formulas() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..30 {
            let num_vars = 4 + (next() % 4) as usize; // 4..=7
            let num_clauses = 6 + (next() % 14) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = coremax_cnf::Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut solver in [Msu4::v1(), Msu4::v2()] {
                let s = solver.solve(&w);
                assert_eq!(
                    s.cost,
                    Some(oracle as u64),
                    "round {round}: {} disagreed on {f}",
                    solver.name()
                );
                if let Some(m) = &s.model {
                    assert_eq!(w.cost(m), s.cost, "model does not attain claimed cost");
                }
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu4::v2();
        let s = solver.solve(&w);
        assert!(s.stats.sat_calls >= 2);
        assert!(s.stats.cores >= 1);
        assert!(s.stats.blocking_vars >= 2);
    }

    #[test]
    fn budget_abort_returns_unknown() {
        use std::time::Duration;
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu4::v2();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
    }

    #[test]
    fn core_minimisation_preserves_optimum() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let mut solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: true,
        });
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.status, MaxSatStatus::Optimal);
    }

    #[test]
    fn core_minimisation_uses_fewer_blocking_vars() {
        // A localised contradiction inside satisfiable padding: the raw
        // core may drag padding in, the minimised one cannot.
        let mut text = String::from("p cnf 12 24\n1 0\n-1 0\n");
        for v in 2..=12 {
            text.push_str(&format!("{v} 0\n"));
            text.push_str(&format!("{v} {} 0\n", if v < 12 { v + 1 } else { 2 }));
        }
        let w = unweighted(&text);
        let mut min_solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: true,
        });
        let with_min = min_solver.solve(&w);
        let without = Msu4::v2().solve(&w);
        assert_eq!(with_min.cost, without.cost);
        assert!(
            with_min.stats.blocking_vars <= without.stats.blocking_vars,
            "minimisation must not block more clauses"
        );
        assert_eq!(with_min.stats.blocking_vars, 2, "exactly the contradiction");
    }

    #[test]
    fn names_distinguish_versions() {
        assert_eq!(Msu4::v1().name(), "msu4-v1");
        assert_eq!(Msu4::v2().name(), "msu4-v2");
    }
}
