//! The msu4 algorithm — Algorithm 1 of the paper.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, Var, WcnfFormula};
use coremax_sat::{Budget, SolveOutcome, Solver};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Configuration of the [`Msu4`] solver.
#[derive(Debug, Clone)]
pub struct Msu4Config {
    /// CNF encoding used for the cardinality constraints. The paper's
    /// **v1** is [`CardEncoding::Bdd`], **v2** is
    /// [`CardEncoding::SortingNetwork`].
    pub encoding: CardEncoding,
    /// Whether to add the optional `Σ_{i∈core} bᵢ ≥ 1` constraint when a
    /// core is blocked (Algorithm 1, line 19). The paper notes it "is in
    /// fact optional, but experiments suggest that it is most often
    /// useful"; it is on by default and an ablation bench toggles it.
    pub core_at_least_one: bool,
    /// Whether to shrink each extracted core with deletion-based
    /// minimisation ([`crate::minimize_core`]) before blocking. Fewer
    /// blocking variables per core at the price of one SAT call per
    /// core clause — the paper's closing remark ties msu4's efficiency
    /// to small cores, and this knob probes that dependence.
    pub minimize_cores: bool,
}

impl Default for Msu4Config {
    fn default() -> Self {
        Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: false,
        }
    }
}

/// The msu4 core-guided MaxSAT solver (Marques-Silva & Planes, DATE'08).
///
/// msu4 maintains a working formula φW. Each SAT-solver call either
/// *refutes* φW — then every not-yet-blocked soft clause in the
/// unsatisfiable core receives a blocking variable, raising the lower
/// bound on the optimum cost — or *satisfies* it — then the number of
/// blocking variables assigned 1 gives an upper bound, and a cardinality
/// constraint demands the next model do strictly better. The algorithm
/// stops when the bounds meet, or when a core contains no unblocked soft
/// clause (the current bound is then provably optimal).
///
/// Unlike msu1 (Fu & Malik), at most **one** blocking variable is ever
/// attached to a clause.
///
/// # Input restrictions
///
/// Supports *unweighted* (partial) MaxSAT: all soft clauses must have
/// weight 1. Hard clauses are fully supported (they are never blocked;
/// a core of hard clauses only means the instance is infeasible).
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics if a soft clause has weight ≠ 1.
///
/// # Examples
///
/// ```
/// use coremax::{Msu4, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// let solution = Msu4::v2().solve(&w);
/// assert_eq!(solution.cost, Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Msu4 {
    config: Msu4Config,
    budget: Budget,
}

impl Msu4 {
    /// msu4 with the default (v2 / sorting network) configuration.
    #[must_use]
    pub fn new() -> Self {
        Msu4::default()
    }

    /// The paper's **v1**: BDD cardinality encoding.
    #[must_use]
    pub fn v1() -> Self {
        Msu4::with_config(Msu4Config {
            encoding: CardEncoding::Bdd,
            ..Msu4Config::default()
        })
    }

    /// The paper's **v2**: sorting-network cardinality encoding.
    #[must_use]
    pub fn v2() -> Self {
        Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            ..Msu4Config::default()
        })
    }

    /// msu4 with an explicit configuration.
    #[must_use]
    pub fn with_config(config: Msu4Config) -> Self {
        Msu4 {
            config,
            budget: Budget::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &Msu4Config {
        &self.config
    }
}

impl MaxSatSolver for Msu4 {
    fn name(&self) -> &'static str {
        match self.config.encoding {
            CardEncoding::Bdd => "msu4-v1",
            CardEncoding::SortingNetwork => "msu4-v2",
            _ => "msu4",
        }
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu4 handles unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let num_soft = wcnf.num_soft();
        let hard: Vec<Vec<Lit>> = wcnf
            .hard_clauses()
            .iter()
            .map(|c| c.lits().to_vec())
            .collect();
        let soft: Vec<Vec<Lit>> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| s.clause.lits().to_vec())
            .collect();

        // Per-soft-clause blocking literal, assigned lazily (at most one,
        // the defining property of msu4).
        let mut blocking: Vec<Option<Lit>> = vec![None; num_soft];
        // All blocking literals, in introduction order (the paper's VB).
        let mut vb: Vec<Lit> = Vec::new();
        // Per-core ≥1 clauses (the optional line-19 constraints); these
        // stay for the whole run.
        let mut ge1: Vec<Vec<Lit>> = Vec::new();
        // CNF of the *current* Σ_vb b ≤ ub−1 bound. Superseded bounds are
        // implied by the tightest one, so φW keeps only the latest —
        // Algorithm 1 accumulates them, but dropping implied clauses
        // changes neither models nor correctness and avoids a quadratic
        // formula blow-up over the descent.
        let mut bound_cnf: Vec<Vec<Lit>> = Vec::new();
        // Variables: original ∪ blocking (encoder auxiliaries live above
        // this watermark and are re-allocated per bound encoding).
        let mut num_vars = wcnf.num_vars();

        // Bounds in *cost* space: lb = the paper's νU (each disjointly
        // refuted core forces one more falsified clause, Prop. 1);
        // ub = the paper's νBV (best model found, Prop. 2).
        let mut lb: usize = 0;
        let mut ub: usize = num_soft;
        let mut best_model: Option<coremax_cnf::Assignment> = None;

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model,
                stats,
            }
        };

        // Feasibility pre-check: cores are not guaranteed minimal, so a
        // hard-only contradiction could otherwise hide inside a mixed
        // core and the termination argument of Algorithm 1 (which assumes
        // plain MaxSAT) would return a bogus optimum.
        let mut hard_model: Option<coremax_cnf::Assignment> = None;
        if !hard.is_empty() {
            let mut solver = Solver::new();
            solver.ensure_vars(wcnf.num_vars());
            solver.set_budget(child_budget.clone());
            for h in &hard {
                solver.add_clause(h.iter().copied());
            }
            stats.sat_calls += 1;
            let outcome = solver.solve();
            stats.absorb_sat(solver.stats());
            match outcome {
                SolveOutcome::Unsat => return finish(MaxSatStatus::Infeasible, None, None, stats),
                SolveOutcome::Unknown => return finish(MaxSatStatus::Unknown, None, None, stats),
                SolveOutcome::Sat => {
                    hard_model = solver.model().cloned();
                }
            }
        }

        loop {
            // (Re)build φW: hard clauses, soft clauses (blocked ones carry
            // their blocking literal), all cardinality CNF so far.
            let mut solver = Solver::new();
            solver.ensure_vars(num_vars);
            solver.set_budget(child_budget.clone());
            // Clause-id layout: [0, hard) hard, [hard, hard+soft) soft,
            // then ge1 clauses, then the current bound encoding. When
            // core minimisation is on, keep the materialised working
            // formula for subset re-solving.
            let mut built: Vec<Vec<Lit>> = Vec::new();
            let keep = |c: Vec<Lit>, built: &mut Vec<Vec<Lit>>| {
                if self.config.minimize_cores {
                    built.push(c);
                }
            };
            for h in &hard {
                solver.add_clause(h.iter().copied());
                keep(h.clone(), &mut built);
            }
            for (i, s) in soft.iter().enumerate() {
                match blocking[i] {
                    Some(b) => {
                        solver.add_clause(s.iter().copied().chain(std::iter::once(b)));
                        let mut c = s.clone();
                        c.push(b);
                        keep(c, &mut built);
                    }
                    None => {
                        solver.add_clause(s.iter().copied());
                        keep(s.clone(), &mut built);
                    }
                }
            }
            for c in &ge1 {
                solver.add_clause(c.iter().copied());
                keep(c.clone(), &mut built);
            }
            for c in &bound_cnf {
                solver.add_clause(c.iter().copied());
                keep(c.clone(), &mut built);
            }

            stats.sat_calls += 1;
            let outcome = solver.solve();
            stats.absorb_sat(solver.stats());
            match outcome {
                SolveOutcome::Unknown => {
                    return finish(
                        MaxSatStatus::Unknown,
                        best_model.is_some().then_some(ub),
                        best_model,
                        stats,
                    );
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    stats.cores += 1;
                    let raw_core: Vec<usize> = solver
                        .unsat_core()
                        .expect("core after UNSAT")
                        .iter()
                        .map(|id| id.index())
                        .collect();
                    let core: Vec<usize> = if self.config.minimize_cores {
                        let mut formula = coremax_cnf::CnfFormula::with_vars(solver.num_vars());
                        for c in &built {
                            formula.add_clause(c.iter().copied());
                        }
                        crate::minimize_core(&formula, &raw_core, &child_budget)
                    } else {
                        raw_core
                    };
                    // φI: unblocked soft clauses in the core (the paper's
                    // "initial clauses"); also detect hard-only cores.
                    let soft_range = hard.len()..hard.len() + num_soft;
                    let mut new_blocked: Vec<usize> = Vec::new();
                    let mut all_hard = true;
                    for idx in core {
                        if soft_range.contains(&idx) {
                            all_hard = false;
                            let soft_idx = idx - hard.len();
                            if blocking[soft_idx].is_none() {
                                new_blocked.push(soft_idx);
                            }
                        } else if idx >= soft_range.end {
                            all_hard = false; // cardinality clause
                        }
                    }
                    if all_hard {
                        return finish(MaxSatStatus::Infeasible, None, None, stats);
                    }
                    if new_blocked.is_empty() {
                        // Line 21–22: the core can be re-derived no matter
                        // which further clauses are blocked, so the current
                        // upper bound is the optimum.
                        debug_assert!(best_model.is_some() || ub == num_soft);
                        let model = best_model.or_else(|| hard_model.clone());
                        return finish(MaxSatStatus::Optimal, Some(ub), model, stats);
                    }
                    // Lines 17–20: attach blocking variables and (optionally)
                    // require at least one of them to be used.
                    let mut core_blockers = Vec::with_capacity(new_blocked.len());
                    for soft_idx in new_blocked {
                        let b = Lit::positive(Var::new(num_vars as u32));
                        num_vars += 1;
                        blocking[soft_idx] = Some(b);
                        vb.push(b);
                        core_blockers.push(b);
                        stats.blocking_vars += 1;
                    }
                    if self.config.core_at_least_one {
                        ge1.push(core_blockers);
                        stats.cardinality_clauses += 1;
                    }
                    // Lines 23–24: every such core lifts the lower bound.
                    lb += 1;
                }
                SolveOutcome::Sat => {
                    stats.sat_iterations += 1;
                    let model = solver.model().expect("model after SAT").clone();
                    // Line 26 uses ν = blocking variables assigned 1; we
                    // tighten it to the model's *actual* number of
                    // falsified soft clauses f ≤ ν (a model may raise a
                    // blocking variable of a clause it satisfies anyway).
                    // Soundness is unchanged: any assignment of cost
                    // ≤ f−1 extends to a model of φW with Σb ≤ f−1, so
                    // the strengthened constraint excludes no optimum.
                    // Without this, descent proceeds one wasted blocking
                    // variable at a time, re-encoding the cardinality
                    // network per step (see DESIGN.md §4).
                    let f = soft
                        .iter()
                        .filter(|s| !s.iter().any(|&l| model.satisfies(l)))
                        .count();
                    debug_assert!(
                        f <= vb.iter().filter(|&&b| model.satisfies(b)).count()
                            || soft.iter().any(Vec::is_empty)
                    );
                    if f < ub || best_model.is_none() {
                        ub = f;
                        best_model = Some(model);
                    }
                    if ub == 0 {
                        // No soft clause needed blocking: cost 0 optimum.
                        return finish(MaxSatStatus::Optimal, Some(0), best_model, stats);
                    }
                    // Lines 30–31: demand strictly fewer blocking vars.
                    // Auxiliary encoder variables sit above the
                    // original+blocking watermark and are recycled when
                    // the bound is replaced.
                    let mut sink = CnfSink::new(num_vars);
                    encode_at_most(&vb, ub - 1, self.config.encoding, &mut sink);
                    let new_clauses = sink.into_clauses();
                    stats.cardinality_clauses += new_clauses.len() as u64;
                    bound_cnf = new_clauses;
                }
            }
            // Line 32: bounds met.
            if lb >= ub {
                let model = best_model.or_else(|| hard_model.clone());
                return finish(MaxSatStatus::Optimal, Some(ub), model, stats);
            }
            if child_budget.interrupted() {
                return finish(
                    MaxSatStatus::Unknown,
                    best_model.is_some().then_some(ub),
                    best_model,
                    stats,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn example1_of_the_paper() {
        let w = unweighted("p cnf 2 3\n1 0\n2 -1 0\n-2 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal);
            assert_eq!(s.cost, Some(1));
            assert_eq!(s.num_satisfied(&w), Some(2));
        }
    }

    #[test]
    fn example2_of_the_paper() {
        // §3.3: optimum 6 of 8 (two clauses falsified).
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal);
            assert_eq!(s.cost, Some(2));
            assert_eq!(s.num_satisfied(&w), Some(6));
            // The model must actually attain the claimed cost.
            let m = s.model.as_ref().unwrap();
            assert_eq!(w.cost(m), Some(2));
        }
    }

    #[test]
    fn satisfiable_formula_costs_zero() {
        let w = unweighted("p cnf 3 3\n1 2 0\n-1 3 0\n-3 2 0\n");
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
    }

    #[test]
    fn all_clauses_conflicting() {
        // (x)(¬x)(y)(¬y): cost 2.
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        for mut solver in [Msu4::v1(), Msu4::v2()] {
            let s = solver.solve(&w);
            assert_eq!(s.cost, Some(2), "{}", solver.name());
        }
    }

    #[test]
    fn partial_maxsat_hard_clauses_respected() {
        // Hard: x1. Soft: ¬x1, x2, ¬x2 → optimum cost 2? No: falsify ¬x1
        // (forced) and one of x2/¬x2 → cost 2.
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_hard([Lit::positive(x1)]);
        w.add_soft([Lit::negative(x1)], 1);
        w.add_soft([Lit::positive(x2)], 1);
        w.add_soft([Lit::negative(x2)], 1);
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(2));
        let m = s.model.unwrap();
        assert_eq!(m.value(x1), Some(true));
    }

    #[test]
    fn infeasible_hard_clauses() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        let s = Msu4::v2().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn weighted_input_rejected() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 3);
        let _ = Msu4::v2().solve(&w);
    }

    #[test]
    fn optional_constraint_off_still_correct() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let mut solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: false,
            minimize_cores: false,
        });
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(2));
    }

    #[test]
    fn agrees_with_oracle_on_random_formulas() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..30 {
            let num_vars = 4 + (next() % 4) as usize; // 4..=7
            let num_clauses = 6 + (next() % 14) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            for mut solver in [Msu4::v1(), Msu4::v2()] {
                let s = solver.solve(&w);
                assert_eq!(
                    s.cost,
                    Some(oracle as u64),
                    "round {round}: {} disagreed on {f}",
                    solver.name()
                );
                if let Some(m) = &s.model {
                    assert_eq!(w.cost(m), s.cost, "model does not attain claimed cost");
                }
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu4::v2();
        let s = solver.solve(&w);
        assert!(s.stats.sat_calls >= 2);
        assert!(s.stats.cores >= 1);
        assert!(s.stats.blocking_vars >= 2);
    }

    #[test]
    fn budget_abort_returns_unknown() {
        use std::time::Duration;
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu4::v2();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
    }

    #[test]
    fn core_minimisation_preserves_optimum() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let mut solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: true,
        });
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.status, MaxSatStatus::Optimal);
    }

    #[test]
    fn core_minimisation_uses_fewer_blocking_vars() {
        // A localised contradiction inside satisfiable padding: the raw
        // core may drag padding in, the minimised one cannot.
        let mut text = String::from("p cnf 12 24\n1 0\n-1 0\n");
        for v in 2..=12 {
            text.push_str(&format!("{v} 0\n"));
            text.push_str(&format!("{v} {} 0\n", if v < 12 { v + 1 } else { 2 }));
        }
        let w = unweighted(&text);
        let mut min_solver = Msu4::with_config(Msu4Config {
            encoding: CardEncoding::SortingNetwork,
            core_at_least_one: true,
            minimize_cores: true,
        });
        let with_min = min_solver.solve(&w);
        let without = Msu4::v2().solve(&w);
        assert_eq!(with_min.cost, without.cost);
        assert!(
            with_min.stats.blocking_vars <= without.stats.blocking_vars,
            "minimisation must not block more clauses"
        );
        assert_eq!(with_min.stats.blocking_vars, 2, "exactly the contradiction");
    }

    #[test]
    fn names_distinguish_versions() {
        assert_eq!(Msu4::v1().name(), "msu4-v1");
        assert_eq!(Msu4::v2().name(), "msu4-v2");
    }
}
