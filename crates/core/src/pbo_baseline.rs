//! The paper's `pbo` column: MaxSAT through the PBO formulation,
//! solved by a minisat+-style optimiser (see [`coremax_pbo`]).

use std::time::Instant;

use coremax_cnf::WcnfFormula;
use coremax_pbo::{maxsat_as_pbo, PboOutcome};
use coremax_sat::Budget;

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// MaxSAT via Pseudo-Boolean Optimisation (§2.2 / Example 1 of the
/// paper): one blocking variable per soft clause, objective `min Σ w·b`,
/// BDD-encoded bound strengthening. Supports weighted partial input.
///
/// This is the reproduction of running **minisat+** on the PBO MaxSAT
/// formulation — the baseline the paper reports as better than maxsatz
/// on industrial instances but still far behind msu4.
///
/// # Examples
///
/// ```
/// use coremax::{PboBaseline, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(PboBaseline::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PboBaseline {
    budget: Budget,
}

impl PboBaseline {
    /// Creates the baseline with an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        PboBaseline::default()
    }
}

impl MaxSatSolver for PboBaseline {
    fn name(&self) -> &'static str {
        "pbo"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn supports_weights(&self) -> bool {
        true
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        let mut pbo = maxsat_as_pbo(wcnf);
        pbo.set_budget(self.budget.clone());
        let outcome = pbo.solve();
        let mut stats = MaxSatStats {
            sat_calls: u64::from(pbo.sat_calls()),
            ..MaxSatStats::default()
        };
        stats.wall_time = start.elapsed();
        match outcome {
            PboOutcome::Optimal { model, cost } => {
                // The PBO model ranges over original + blocking + aux
                // variables; the cost of the original-variable projection
                // equals the objective value because blocking variables
                // are driven to the falsified clauses at the optimum.
                let real_cost = wcnf.cost(&model).unwrap_or(cost);
                let cost = real_cost.min(cost);
                MaxSatSolution {
                    status: MaxSatStatus::Optimal,
                    cost: Some(cost),
                    model: Some(model),
                    lower_bound: cost,
                    stats,
                }
            }
            PboOutcome::Infeasible => MaxSatSolution::infeasible(stats),
            PboOutcome::Unknown { best } => {
                // Linear descent proves no lower bound before the final
                // UNSAT call; the incumbent certifies its exact cost on
                // the original soft clauses.
                let model = best.map(|(m, _)| m);
                let cost = model.as_ref().and_then(|m| wcnf.cost(m));
                let model = cost.is_some().then_some(model).flatten();
                MaxSatSolution {
                    status: MaxSatStatus::Unknown,
                    cost,
                    model,
                    lower_bound: 0,
                    stats,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{dimacs, Lit};
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn paper_example2() {
        let w = unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let s = PboBaseline::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.status, MaxSatStatus::Optimal);
    }

    #[test]
    fn weighted_supported() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 7);
        w.add_soft([Lit::negative(x)], 3);
        assert_eq!(PboBaseline::new().solve(&w).cost, Some(3));
    }

    #[test]
    fn infeasible() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        assert_eq!(
            PboBaseline::new().solve(&w).status,
            MaxSatStatus::Infeasible
        );
    }

    #[test]
    fn agrees_with_oracle() {
        let mut seed = 0x6C62272E07BB0142u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..15 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = coremax_cnf::Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            let s = PboBaseline::new().solve(&w);
            assert_eq!(s.cost, Some(oracle as u64), "pbo wrong on {f}");
        }
    }
}
