//! msu1 — Fu & Malik's core-guided algorithm (reference \[11\]).

use std::time::Instant;

use coremax_cards::{encode_exactly, CardEncoding, CnfSink};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_sat::{Budget, EngineMode, IncrementalSolver, SoftId, SolveOutcome};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};

/// Fu & Malik's algorithm (SAT 2006), the paper's msu1.
///
/// Repeatedly solve the working formula; on UNSAT, add a **fresh**
/// blocking variable to every soft clause in the core (clauses hit by
/// `r` cores accumulate `r` blocking variables — the drawback §2.3
/// points out) together with an *exactly-one* constraint over the new
/// variables, and increase the cost by one. The first satisfiable
/// working formula proves the accumulated cost optimal.
///
/// # Input restrictions
///
/// Unweighted (partial) MaxSAT: soft weights must all be 1.
///
/// # Panics
///
/// [`MaxSatSolver::solve`] panics on weighted input.
///
/// # Examples
///
/// ```
/// use coremax::{Msu1, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 1);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(Msu1::new().solve(&w).cost, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Msu1 {
    encoding: CardEncoding,
    budget: Budget,
    engine_mode: EngineMode,
}

impl Default for Msu1 {
    fn default() -> Self {
        Msu1::new()
    }
}

impl Msu1 {
    /// msu1 with the pairwise exactly-one encoding used by Fu & Malik.
    #[must_use]
    pub fn new() -> Self {
        Msu1 {
            encoding: CardEncoding::Pairwise,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// msu1 with an alternative exactly-one encoding.
    #[must_use]
    pub fn with_encoding(encoding: CardEncoding) -> Self {
        Msu1 {
            encoding,
            budget: Budget::new(),
            engine_mode: EngineMode::Persistent,
        }
    }

    /// Selects how the SAT engine services iterations; the rebuilding
    /// mode reconstructs a fresh solver per call (benchmark baseline).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }
}

impl MaxSatSolver for Msu1 {
    fn name(&self) -> &'static str {
        "msu1"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        assert!(
            wcnf.is_unweighted(),
            "msu1 handles unweighted (partial) MaxSAT; got weighted soft clauses"
        );
        let start = Instant::now();
        let child_budget = self.budget.child(start);
        let mut stats = MaxSatStats::default();

        let mut cost: usize = 0;

        let finish = |status: MaxSatStatus,
                      cost: Option<usize>,
                      lower_bound: usize,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost: cost.map(|c| c as u64),
                model,
                lower_bound: lower_bound as u64,
                stats,
            }
        };

        // One engine for the whole run: hard clauses once, each soft
        // registered with a selector and enforced by assumption (the
        // working formula treats softs as mandatory; relaxation happens
        // through the blocking literals Fu–Malik adds *inside* them).
        let mut engine = IncrementalSolver::with_mode(self.engine_mode);
        engine.ensure_vars(wcnf.num_vars());
        engine.set_budget(child_budget.clone());
        for h in wcnf.hard_clauses() {
            engine.add_clause(h.lits().iter().copied());
        }
        // Current working copy of each soft clause: its literals (which
        // grow blocking variables over time) and its live handle.
        let mut soft: Vec<Vec<Lit>> = wcnf
            .soft_clauses()
            .iter()
            .map(|s| s.clause.lits().to_vec())
            .collect();
        let mut handles: Vec<SoftId> = soft
            .iter()
            .map(|lits| engine.add_soft(lits.iter().copied()))
            .collect();

        loop {
            stats.sat_calls += 1;
            match engine.solve(&[]) {
                SolveOutcome::Unknown => {
                    stats.absorb_sat(&engine.stats());
                    // Every extracted core charged one unit: the
                    // accumulated cost is a certified lower bound even
                    // though no incumbent exists yet (the first SAT
                    // answer would already be optimal).
                    return finish(MaxSatStatus::Unknown, None, cost, None, stats);
                }
                SolveOutcome::Sat => {
                    let model = engine.model().expect("model after SAT").clone();
                    stats.absorb_sat(&engine.stats());
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::Incumbent { cost: cost as u64 });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: cost as u64,
                            ub: Some(cost as u64),
                        });
                    }
                    return finish(MaxSatStatus::Optimal, Some(cost), cost, Some(model), stats);
                }
                SolveOutcome::Unsat => {
                    stats.unsat_iterations += 1;
                    // A refutation independent of the soft assumptions can
                    // only cite hard clauses (every selector is free at the
                    // clause level, and exactly-one constraints are
                    // satisfiable on their own): infeasible.
                    if engine.formula_refuted() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    stats.cores += 1;
                    let failed = engine.failed_softs();
                    let in_core: Vec<usize> = failed
                        .iter()
                        .filter_map(|id| handles.iter().position(|h| h == id))
                        .collect();
                    if in_core.is_empty() {
                        stats.absorb_sat(&engine.stats());
                        return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                    }
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::CoreExtracted {
                            size: in_core.len() as u64,
                            weight: 1,
                        });
                    }
                    // Fresh blocking variable per soft core clause. The
                    // stored clause cannot be mutated in place, so the old
                    // copy is retired and the extended clause registered as
                    // a new soft under a fresh selector.
                    let mut fresh: Vec<Lit> = Vec::with_capacity(in_core.len());
                    for &i in &in_core {
                        let b = Lit::positive(engine.new_var());
                        soft[i].push(b);
                        fresh.push(b);
                        stats.blocking_vars += 1;
                        engine.retire(handles[i]);
                        handles[i] = engine.add_soft(soft[i].iter().copied());
                    }
                    // Exactly one of the fresh variables is spent.
                    let encode_span = coremax_obs::span(coremax_obs::Phase::Encode);
                    let mut sink = CnfSink::new(engine.num_vars());
                    encode_exactly(&fresh, 1, self.encoding, &mut sink);
                    engine.ensure_vars(sink.num_vars());
                    let new_clauses = sink.into_clauses();
                    stats.cardinality_clauses += new_clauses.len() as u64;
                    let clauses_added = new_clauses.len() as u64;
                    for c in new_clauses {
                        engine.add_clause(c);
                    }
                    encode_span.finish(&mut stats.phase);
                    cost += 1;
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::RelaxationEncoded {
                            blocking_vars: fresh.len() as u64,
                            clauses: clauses_added,
                        });
                        coremax_obs::emit(coremax_obs::Event::Bounds {
                            lb: cost as u64,
                            ub: None,
                        });
                    }
                }
            }
            if child_budget.interrupted() {
                stats.absorb_sat(&engine.stats());
                return finish(MaxSatStatus::Unknown, None, cost, None, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_max_satisfiable;

    fn unweighted(text: &str) -> WcnfFormula {
        WcnfFormula::from_cnf_all_soft(&dimacs::parse_cnf(text).unwrap())
    }

    #[test]
    fn paper_examples() {
        let e1 = unweighted("p cnf 2 3\n1 0\n2 -1 0\n-2 0\n");
        assert_eq!(Msu1::new().solve(&e1).cost, Some(1));
        let e2 =
            unweighted("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n");
        let s = Msu1::new().solve(&e2);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.num_satisfied(&e2), Some(6));
    }

    #[test]
    fn satisfiable_costs_zero() {
        let w = unweighted("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let s = Msu1::new().solve(&w);
        assert_eq!(s.cost, Some(0));
        assert_eq!(s.stats.cores, 0);
    }

    #[test]
    fn model_attains_cost() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let s = Msu1::new().solve(&w);
        assert_eq!(s.cost, Some(2));
        let m = s.model.unwrap();
        assert_eq!(w.cost(&m), Some(2));
    }

    #[test]
    fn partial_infeasible() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        assert_eq!(Msu1::new().solve(&w).status, MaxSatStatus::Infeasible);
    }

    #[test]
    fn clauses_accumulate_multiple_blockers() {
        // A clause participating in several cores gains several blocking
        // vars; the run must still report the right optimum.
        let w = unweighted("p cnf 3 6\n1 0\n-1 0\n1 2 0\n-2 0\n1 3 0\n-3 0\n");
        let oracle = {
            let f = dimacs::parse_cnf("p cnf 3 6\n1 0\n-1 0\n1 2 0\n-2 0\n1 3 0\n-3 0\n").unwrap();
            f.num_clauses() - dpll_max_satisfiable(&f)
        };
        let s = Msu1::new().solve(&w);
        assert_eq!(s.cost, Some(oracle as u64));
    }

    #[test]
    fn agrees_with_oracle_on_random_formulas() {
        let mut seed = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 5 + (next() % 10) as usize;
            let mut f = coremax_cnf::CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = coremax_cnf::Var::new((next() % num_vars as u64) as u32);
                        Lit::new(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let oracle = f.num_clauses() - dpll_max_satisfiable(&f);
            let w = WcnfFormula::from_cnf_all_soft(&f);
            let s = Msu1::new().solve(&w);
            assert_eq!(s.cost, Some(oracle as u64), "msu1 wrong on {f}");
        }
    }

    #[test]
    fn budget_abort() {
        use std::time::Duration;
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let mut solver = Msu1::new();
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
        assert!(s.lower_bound <= 2, "lb stays below the optimum");
    }

    #[test]
    fn optimal_carries_tight_lower_bound() {
        let w = unweighted("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n");
        let s = Msu1::new().solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.lower_bound, 2);
        assert_eq!(s.gap(), Some(0));
    }
}
