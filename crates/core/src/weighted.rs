//! Weighted MaxSAT through unweighted solvers.
//!
//! The msu* algorithms of the paper are defined for unweighted (partial)
//! MaxSAT. The classic reduction — replicate each soft clause `w` times
//! — makes them applicable to small-weight weighted instances, which is
//! how weighted benchmarks were handled before weight-aware core-guided
//! algorithms (WPM1, stratification) appeared. The replication preserves
//! optima exactly: falsifying the original clause costs `w` in both
//! formulations.

use coremax_cnf::{WcnfFormula, Weight};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStatus};

/// Expands a weighted instance into an unweighted one by replicating
/// every soft clause `weight` times. Returns `None` when the total
/// replicated clause count would exceed `cap` (replication is only
/// sensible for small weights). Totals are computed with saturating
/// arithmetic, so near-overflow weight sums compare as "too large"
/// instead of wrapping into a spuriously small count.
///
/// # Examples
///
/// ```
/// use coremax::replicate_weights;
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 3);
/// let u = replicate_weights(&w, 100).expect("small weights");
/// assert_eq!(u.num_soft(), 3);
/// assert!(u.is_unweighted());
/// ```
#[must_use]
pub fn replicate_weights(wcnf: &WcnfFormula, cap: u64) -> Option<WcnfFormula> {
    if wcnf.total_soft_weight() > cap {
        return None;
    }
    let mut out = WcnfFormula::with_vars(wcnf.num_vars());
    for h in wcnf.hard_clauses() {
        out.add_hard(h.lits().iter().copied());
    }
    for s in wcnf.soft_clauses() {
        for _ in 0..s.weight {
            out.add_soft(s.clause.lits().iter().copied(), 1);
        }
    }
    Some(out)
}

/// Adapter giving any unweighted solver weighted support by clause
/// replication.
///
/// This is the historical baseline, kept for comparison: the native
/// weighted paths ([`crate::Wmsu1`], [`crate::Stratified`]) subsume it
/// on every weighted family. When the total soft weight exceeds the
/// cap, `solve` gives up with [`MaxSatStatus::Unknown`] — it does not
/// panic, so benchmark harnesses can record the cap-out.
///
/// # Examples
///
/// ```
/// use coremax::{Msu4, WeightedByReplication, MaxSatSolver};
/// use coremax_cnf::{Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_soft([Lit::positive(x)], 4);
/// w.add_soft([Lit::negative(x)], 9);
/// let mut solver = WeightedByReplication::new(Msu4::v2());
/// assert_eq!(solver.solve(&w).cost, Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct WeightedByReplication<S> {
    inner: S,
    cap: u64,
}

impl<S: MaxSatSolver> WeightedByReplication<S> {
    /// Wraps `inner` with the default replication cap (100 000 clauses).
    #[must_use]
    pub fn new(inner: S) -> Self {
        WeightedByReplication {
            inner,
            cap: 100_000,
        }
    }

    /// Wraps `inner` with an explicit cap on the replicated clause count.
    #[must_use]
    pub fn with_cap(inner: S, cap: u64) -> Self {
        WeightedByReplication { inner, cap }
    }
}

impl<S: MaxSatSolver> MaxSatSolver for WeightedByReplication<S> {
    fn name(&self) -> &'static str {
        "weighted-replication"
    }

    fn set_budget(&mut self, budget: coremax_sat::Budget) {
        self.inner.set_budget(budget);
    }

    fn supports_weights(&self) -> bool {
        true
    }

    /// Solves weighted instances by replication; unweighted instances
    /// pass through untouched. Instances whose total soft weight
    /// exceeds the cap come back as [`MaxSatStatus::Unknown`].
    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        if wcnf.is_unweighted() {
            return self.inner.solve(wcnf);
        }
        let start = std::time::Instant::now();
        let Some(replicated) = replicate_weights(wcnf, self.cap) else {
            return MaxSatSolution {
                status: MaxSatStatus::Unknown,
                cost: None,
                model: None,
                lower_bound: 0,
                stats: crate::types::MaxSatStats {
                    wall_time: start.elapsed(),
                    ..Default::default()
                },
            };
        };
        let mut solution = self.inner.solve(&replicated);
        // Costs coincide; the model ranges over the same variables.
        if solution.status == MaxSatStatus::Optimal {
            debug_assert_eq!(
                solution.model.as_ref().and_then(|m| wcnf.cost(m)),
                solution.cost,
                "replicated cost must equal weighted cost"
            );
        }
        solution.cost = solution
            .model
            .as_ref()
            .and_then(|m| wcnf.cost(m))
            .or(solution.cost);
        solution
    }
}

/// Total weight helper used by tests: the worst possible cost.
#[must_use]
pub fn worst_case_cost(wcnf: &WcnfFormula) -> Weight {
    wcnf.total_soft_weight()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBound, Msu3, Msu4};
    use coremax_cnf::{Lit, Var};

    fn weighted_instance() -> WcnfFormula {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        w.add_soft([Lit::positive(x)], 4);
        w.add_soft([Lit::negative(x)], 2);
        w.add_soft([Lit::positive(y), Lit::positive(x)], 3);
        w.add_soft([Lit::negative(y)], 1);
        w
    }

    #[test]
    fn replication_counts() {
        let w = weighted_instance();
        let u = replicate_weights(&w, 100).unwrap();
        assert_eq!(u.num_soft(), 10);
        assert!(u.is_unweighted());
        assert_eq!(u.num_vars(), w.num_vars());
    }

    #[test]
    fn replication_respects_cap() {
        let w = weighted_instance();
        assert!(replicate_weights(&w, 5).is_none());
    }

    #[test]
    fn over_cap_solve_returns_unknown_not_panic() {
        let w = weighted_instance(); // total weight 10
        let mut wrapped = WeightedByReplication::with_cap(Msu4::v2(), 5);
        let s = wrapped.solve(&w);
        assert_eq!(s.status, crate::MaxSatStatus::Unknown);
        assert!(s.cost.is_none() && s.model.is_none());
        assert!(crate::verify_solution(&w, &s));
    }

    #[test]
    fn near_overflow_totals_never_wrap_into_the_cap() {
        use coremax_cnf::HARD_WEIGHT;
        // Two near-sentinel weights: a wrapping sum would come out tiny
        // and sneak under the cap; the saturating contract must reject.
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], HARD_WEIGHT - 1);
        w.add_soft([Lit::negative(x)], HARD_WEIGHT - 1);
        assert_eq!(w.total_soft_weight(), HARD_WEIGHT);
        assert_eq!(w.checked_total_soft_weight(), None);
        assert_eq!(worst_case_cost(&w), HARD_WEIGHT);
        assert!(replicate_weights(&w, 100_000).is_none());
        assert!(replicate_weights(&w, u64::MAX - 1).is_none());
        let mut wrapped = WeightedByReplication::new(Msu4::v2());
        assert_eq!(wrapped.solve(&w).status, crate::MaxSatStatus::Unknown);
    }

    #[test]
    fn duplicate_soft_clauses_with_different_weights_replicate_additively() {
        // (x) at 2 and (x) at 3 behave exactly like (x) at 5.
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 2);
        w.add_soft([Lit::positive(x)], 3);
        let u = replicate_weights(&w, 100).unwrap();
        assert_eq!(u.num_soft(), 5);
        let oracle = BranchBound::new().solve(&w);
        assert_eq!(oracle.cost, Some(5));
        let mut wrapped = WeightedByReplication::new(Msu4::v2());
        let s = wrapped.solve(&w);
        assert_eq!(s.cost, Some(5));
        assert!(crate::verify_solution(&w, &s));
    }

    #[test]
    fn wrapped_msu4_matches_branch_bound_on_weighted() {
        let w = weighted_instance();
        let oracle = BranchBound::new().solve(&w);
        let mut wrapped = WeightedByReplication::new(Msu4::v2());
        let s = wrapped.solve(&w);
        assert_eq!(s.cost, oracle.cost);
        let mut wrapped3 = WeightedByReplication::new(Msu3::new());
        assert_eq!(wrapped3.solve(&w).cost, oracle.cost);
    }

    #[test]
    fn unweighted_passthrough() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        w.add_soft([Lit::negative(x)], 1);
        let mut wrapped = WeightedByReplication::new(Msu4::v2());
        assert_eq!(wrapped.solve(&w).cost, Some(1));
    }

    #[test]
    fn hard_clauses_preserved() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(x)], 5);
        let mut wrapped = WeightedByReplication::new(Msu4::v2());
        let s = wrapped.solve(&w);
        assert_eq!(s.cost, Some(5));
        assert_eq!(s.model.unwrap().value(Var::new(0)), Some(true));
    }

    #[test]
    fn worst_case_helper() {
        assert_eq!(worst_case_cost(&weighted_instance()), 10);
    }

    #[test]
    fn random_weighted_agreement() {
        let mut seed = 0xCAFEBABEDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let num_vars = 3 + (next() % 3) as usize;
            let mut w = WcnfFormula::with_vars(num_vars);
            for _ in 0..(4 + next() % 6) {
                let len = 1 + (next() % 2) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new((next() % num_vars as u64) as u32), next() & 1 == 0))
                    .collect();
                w.add_soft(lits, 1 + next() % 4);
            }
            let oracle = BranchBound::new().solve(&w);
            let mut wrapped = WeightedByReplication::new(Msu4::v2());
            let s = wrapped.solve(&w);
            assert_eq!(s.cost, oracle.cost, "weighted disagreement");
        }
    }
}
