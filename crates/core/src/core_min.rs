//! Deletion-based unsatisfiable-core minimisation.
//!
//! The paper closes with: msu4 "is effective only for instances for
//! which SAT solvers are effective at identifying small unsatisfiable
//! cores". Cores from CDCL solvers are sound but not minimal; the
//! classic remedy is deletion-based minimisation — try dropping each
//! clause, keep the drop if the rest stays unsatisfiable. The result is
//! an *irredundant* (set-minimal) core, at the cost of one SAT call per
//! clause.

use coremax_cnf::CnfFormula;
use coremax_sat::{Budget, IncrementalSolver, SoftId, SolveOutcome};

/// Shrinks `core` (clause indices into `formula`) to an irredundant
/// unsatisfiable subset by deletion-based minimisation.
///
/// Each candidate removal costs one SAT call on the remaining subset;
/// if the budget expires mid-way the current (still sound) subset is
/// returned. The input must be unsatisfiable as given.
///
/// # Examples
///
/// ```
/// use coremax::minimize_core;
/// use coremax_cnf::dimacs;
/// use coremax_sat::Budget;
///
/// // (x)(¬x) plus two redundant clauses in the "core".
/// let f = dimacs::parse_cnf("p cnf 2 4\n1 0\n-1 0\n2 0\n1 2 0\n")?;
/// let minimal = minimize_core(&f, &[0, 1, 2, 3], &Budget::new());
/// assert_eq!(minimal, vec![0, 1]);
/// # Ok::<(), coremax_cnf::ParseDimacsError>(())
/// ```
#[must_use]
pub fn minimize_core(formula: &CnfFormula, core: &[usize], budget: &Budget) -> Vec<usize> {
    let start = std::time::Instant::now();
    let child_budget = budget.child(start);
    let mut kept: Vec<usize> = core.to_vec();

    // One persistent engine for every probe: each candidate clause is a
    // selector-managed soft, and "dropping" a clause is just leaving
    // its selector out of the assumption set. Learned clauses carry
    // over between probes, which is exactly where deletion-based
    // minimisation spends its time.
    let mut engine = IncrementalSolver::new();
    engine.ensure_vars(formula.num_vars());
    engine.set_budget(child_budget.clone());
    let mut handles: Vec<SoftId> = kept
        .iter()
        .map(|&idx| engine.add_soft(formula.clause(idx).lits().iter().copied()))
        .collect();

    let mut probe = 0usize;
    while probe < kept.len() {
        if child_budget.interrupted() {
            break;
        }
        // Try dropping kept[probe]: assume every kept selector but its.
        let assumptions: Vec<_> = handles
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != probe)
            .map(|(_, &h)| engine.assumption(h))
            .collect();
        match engine.solve_exact(&assumptions) {
            SolveOutcome::Unsat => {
                // Still UNSAT without it: drop for good. Better: keep
                // only the clauses of the *new* core, which may drop
                // several at once.
                let sub_core = engine.failed_softs();
                let mut remaining: Vec<usize> = Vec::with_capacity(sub_core.len());
                let mut remaining_handles: Vec<SoftId> = Vec::with_capacity(sub_core.len());
                for (i, (&idx, &h)) in kept.iter().zip(handles.iter()).enumerate() {
                    if i != probe && sub_core.contains(&h) {
                        remaining.push(idx);
                        remaining_handles.push(h);
                    }
                }
                kept = remaining;
                handles = remaining_handles;
                // Do not advance: position `probe` now holds a new clause.
            }
            SolveOutcome::Sat => {
                // Necessary clause: keep and move on.
                probe += 1;
            }
            SolveOutcome::Unknown => break,
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::dimacs;
    use coremax_sat::dpll_is_satisfiable;

    #[test]
    fn shrinks_to_a_single_contradiction() {
        // Two independent contradictions: {0,1} and {2,3,4}. Either is a
        // valid minimal core; both are smaller than the input.
        let f = dimacs::parse_cnf("p cnf 3 5\n1 0\n-1 0\n2 0\n3 0\n-2 -3 0\n").unwrap();
        let minimal = minimize_core(&f, &[0, 1, 2, 3, 4], &Budget::new());
        assert!(
            minimal == vec![0, 1] || minimal == vec![2, 3, 4],
            "unexpected minimal core {minimal:?}"
        );
    }

    #[test]
    fn minimal_core_is_irredundant() {
        // Implication chain: every clause is necessary.
        let f = dimacs::parse_cnf("p cnf 3 4\n1 0\n-1 2 0\n-2 3 0\n-3 0\n").unwrap();
        let minimal = minimize_core(&f, &[0, 1, 2, 3], &Budget::new());
        assert_eq!(minimal, vec![0, 1, 2, 3]);
    }

    #[test]
    fn result_is_unsat_subset() {
        let f = dimacs::parse_cnf("p cnf 4 7\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n3 0\n-3 4 0\n-4 0\n")
            .unwrap();
        // Two independent contradictions; start from everything.
        let minimal = minimize_core(&f, &[0, 1, 2, 3, 4, 5, 6], &Budget::new());
        let mut sub = CnfFormula::with_vars(f.num_vars());
        for &i in &minimal {
            sub.add_clause(f.clause(i).lits().iter().copied());
        }
        assert!(!dpll_is_satisfiable(&sub));
        // Irredundance: dropping any clause makes it satisfiable.
        for drop in 0..minimal.len() {
            let mut weaker = CnfFormula::with_vars(f.num_vars());
            for (i, &idx) in minimal.iter().enumerate() {
                if i != drop {
                    weaker.add_clause(f.clause(idx).lits().iter().copied());
                }
            }
            assert!(
                dpll_is_satisfiable(&weaker),
                "clause {drop} was redundant in the 'minimal' core"
            );
        }
    }

    #[test]
    fn budget_exhaustion_returns_sound_superset() {
        use std::time::Duration;
        let f = dimacs::parse_cnf("p cnf 2 3\n1 0\n-1 0\n2 0\n").unwrap();
        let result = minimize_core(&f, &[0, 1, 2], &Budget::new().with_timeout(Duration::ZERO));
        // Nothing was checked: the original core comes back.
        assert_eq!(result, vec![0, 1, 2]);
    }

    #[test]
    fn pigeonhole_core_minimises() {
        use coremax_cnf::{Lit, Var};
        // PHP(3,2) plus noise clauses; minimise the full clause set.
        let mut f = CnfFormula::new();
        let var = |p: usize, h: usize| Var::new((p * 2 + h) as u32);
        for p in 0..3 {
            f.add_clause([Lit::positive(var(p, 0)), Lit::positive(var(p, 1))]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in p1 + 1..3 {
                    f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        for _ in 0..5 {
            let v = f.new_var();
            f.add_clause([Lit::positive(v)]);
        }
        let all: Vec<usize> = (0..f.num_clauses()).collect();
        let minimal = minimize_core(&f, &all, &Budget::new());
        // The noise units cannot be in any minimal core.
        assert!(minimal.len() <= 9);
        assert!(minimal.iter().all(|&i| i < 9));
    }
}
