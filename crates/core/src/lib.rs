//! Core-guided MaxSAT algorithms — a reproduction of
//! *Algorithms for Maximum Satisfiability using Unsatisfiable Cores*
//! (Marques-Silva & Planes, DATE 2008).
//!
//! The headline contribution is [`Msu4`], Algorithm 1 of the paper: a
//! MaxSAT procedure that drives a CDCL SAT solver, extracts an
//! unsatisfiable core whenever the working formula is refuted, attaches
//! at most one blocking variable to each soft clause appearing in a
//! core, and squeezes a lower bound (satisfying assignments,
//! Proposition 2) against an upper bound (disjoint cores,
//! Proposition 1) with cardinality constraints until they meet.
//!
//! The crate also contains every comparison point of the paper's
//! evaluation plus the algorithm family around it:
//!
//! | Solver | Paper role |
//! |---|---|
//! | [`Msu4`] (BDD / sorting-network encodings) | the contribution (v1 / v2) |
//! | [`Msu1`] | Fu & Malik's algorithm \[11\] |
//! | [`Msu3`], [`Msu2`] | the companion-report algorithms \[22\] |
//! | [`PboBaseline`] | minisat+ on the PBO formulation (§2.2) |
//! | [`BranchBound`] | maxsatz-style branch and bound \[18\] |
//! | [`LinearSearchSat`], [`BinarySearchSat`] | "MaxSAT as iterated SAT" baselines |
//! | [`Msu4Incremental`] | §5's "alternative SAT technology": assumption-based incremental msu4 |
//!
//! Beyond the paper, the crate carries the weighted successor line:
//! [`Wmsu1`] (Fu–Malik with weight splitting, WPM1-style) solves
//! weighted partial MaxSAT natively, [`Oll`] is the OLL/RC2-class
//! driver (soft cardinality constraints per core, incremental totalizer
//! bound raises, core exhaustion, weight-aware hardening), and
//! [`Stratified`] turns *any* solver — including the unweighted
//! msu3/msu4 — into an exact weighted solver by solving weight strata
//! heaviest-first and freezing each stratum's optimum.
//! [`WeightedByReplication`] remains as the historical baseline they
//! subsume.
//!
//! All solvers implement [`MaxSatSolver`] and accept weighted partial
//! WCNF input where the algorithm supports it (see each type's docs and
//! [`MaxSatSolver::supports_weights`]). Any of them can be wrapped in
//! [`Preprocessed`] to run the `coremax_simp` simplification pipeline
//! (bounded variable elimination, subsumption, probing) once per solve,
//! with models reconstructed back to the original variable space.
//!
//! # Examples
//!
//! Solve the paper's running example (Example 2, optimum 6 of 8):
//!
//! ```
//! use coremax::{Msu4, MaxSatSolver, MaxSatStatus};
//! use coremax_cnf::{dimacs, WcnfFormula};
//!
//! let cnf = dimacs::parse_cnf(
//!     "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
//! ).expect("valid DIMACS");
//! let wcnf = WcnfFormula::from_cnf_all_soft(&cnf);
//! let mut solver = Msu4::v2();
//! let solution = solver.solve(&wcnf);
//! assert_eq!(solution.status, MaxSatStatus::Optimal);
//! assert_eq!(solution.cost, Some(2));           // two clauses falsified
//! assert_eq!(solution.num_satisfied(&wcnf), Some(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod branch_bound;
mod core_min;
mod linear_core;
mod msu1;
mod msu4;
mod msu4_inc;
mod oll;
mod pbo_baseline;
mod preprocess;
mod sat_search;
mod stratify;
mod types;
mod verify;
mod weighted;
mod wmsu1;

pub use bounds::{blocking_upper_bound, disjoint_core_analysis, DisjointCoreReport};
pub use branch_bound::BranchBound;
pub use core_min::minimize_core;
pub use coremax_sat::{ClauseExchange, ExchangeTotals, SharedContext, SharingConfig};
pub use linear_core::{Msu2, Msu3};
pub use msu1::Msu1;
pub use msu4::{Msu4, Msu4Config};
pub use msu4_inc::Msu4Incremental;
pub use oll::Oll;
pub use pbo_baseline::PboBaseline;
pub use preprocess::Preprocessed;
pub use sat_search::{BinarySearchSat, LinearSearchSat};
pub use stratify::Stratified;
pub use types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};
pub use verify::verify_solution;
pub use weighted::{replicate_weights, worst_case_cost, WeightedByReplication};
pub use wmsu1::Wmsu1;
