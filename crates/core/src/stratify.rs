//! Stratified weighted MaxSAT: solve weight strata heaviest-first,
//! freezing each stratum's optimum before descending.
//!
//! Stratification turns *any* MaxSAT solver — including the paper's
//! unweighted msu3/msu4 — into an exact weighted solver whenever the
//! weight distribution is diverse enough, which is precisely the regime
//! (few distinct weights, heavy ones dominating) where industrial
//! weighted instances live (Ansótegui–Bonet–Levy's stratified WPM1
//! heuristic).
//!
//! # Exactness
//!
//! Soft clauses are partitioned into **groups** of weight strata,
//! heaviest first, closing a group as soon as the *hardening
//! condition* holds: `gcd(weights in the group) > total weight of
//! everything lighter`. Achievable per-group costs are subset sums of
//! the group's weights, so two different group costs differ by at
//! least the gcd — and the condition makes any improvement in a
//! heavier group outweigh every lighter clause combined. Minimising
//! the groups lexicographically (each stage's optimum frozen by a
//! cardinality/pseudo-Boolean bound over relaxation selectors before
//! the next stage starts) is then exactly the weighted optimum.
//!
//! # Delegation
//!
//! Each group is normalised by its gcd and handed to the inner solver:
//! uniform groups become unweighted sub-instances directly; mixed
//! groups go to a weight-capable inner solver as-is, are expanded by
//! bounded replication, or fall back to an internal [`Wmsu1`] when the
//! expansion would exceed the replication cap — so the combination is
//! exact on *every* weighted instance, not just well-stratified ones.

use std::time::Instant;

use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, Var, WcnfFormula, Weight};
use coremax_pbo::{encode_pb, PbConstraint, PbOp, PbTerm};
use coremax_sat::{Budget, SharedContext};

use crate::types::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};
use crate::wmsu1::Wmsu1;

/// Stratified meta-solver: weight strata solved heaviest-first, each
/// stratum delegated to the inner [`MaxSatSolver`].
///
/// Unweighted instances pass straight through to the inner solver (one
/// stratum, no freezing overhead), so `Stratified<S>` is a safe default
/// wrapper for any `S`.
///
/// # Examples
///
/// ```
/// use coremax::{MaxSatSolver, Msu3, Stratified};
/// use coremax_cnf::{Lit, WcnfFormula};
///
/// // msu3 alone panics on weighted input; stratified it is exact.
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// let y = w.new_var();
/// w.add_hard([Lit::negative(x), Lit::negative(y)]);
/// w.add_soft([Lit::positive(x)], 100);
/// w.add_soft([Lit::positive(y)], 3);
/// let s = Stratified::new(Msu3::new()).solve(&w);
/// assert_eq!(s.cost, Some(3));
/// assert!(coremax::verify_solution(&w, &s));
/// ```
#[derive(Debug, Clone)]
pub struct Stratified<S> {
    inner: S,
    encoding: CardEncoding,
    replication_cap: Weight,
    budget: Budget,
    shared: Option<SharedContext>,
}

impl<S: MaxSatSolver> Stratified<S> {
    /// Wraps `inner` with the totalizer freeze encoding and the default
    /// per-group replication cap (10 000 normalised copies — past that,
    /// a weight-incapable inner solver would spend its time re-proving
    /// unit-weight cores one by one, so the mixed group goes to the
    /// weight-native [`Wmsu1`] fallback instead).
    #[must_use]
    pub fn new(inner: S) -> Self {
        Stratified {
            inner,
            encoding: CardEncoding::Totalizer,
            replication_cap: 10_000,
            budget: Budget::new(),
            shared: None,
        }
    }

    /// Selects the cardinality encoding used for stratum freezes.
    #[must_use]
    pub fn with_encoding(mut self, encoding: CardEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Caps the normalised copy count a mixed group may be expanded to
    /// before the internal [`Wmsu1`] fallback takes over.
    #[must_use]
    pub fn with_replication_cap(mut self, cap: Weight) -> Self {
        self.replication_cap = cap;
        self
    }

    /// The inner solver.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// One group of weight strata solved as a single stage.
struct Group {
    /// `(soft index, weight)` pairs, every weight a multiple of `gcd`.
    clauses: Vec<(usize, Weight)>,
    gcd: Weight,
}

fn gcd(a: Weight, b: Weight) -> Weight {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Greedy heaviest-first grouping under the hardening condition
/// `gcd(group) > total weight of all lighter clauses`.
fn partition(wcnf: &WcnfFormula) -> Vec<Group> {
    let strata = wcnf.weight_strata();
    // suffix[i] = total weight of strata i.. (saturating: an overflowed
    // remainder simply prevents early group closure, which is sound).
    let mut suffix: Vec<Weight> = vec![0; strata.len() + 1];
    for i in (0..strata.len()).rev() {
        suffix[i] = suffix[i + 1].saturating_add(strata[i].total_weight());
    }
    let mut groups = Vec::new();
    let mut current = Group {
        clauses: Vec::new(),
        gcd: 0,
    };
    for (i, stratum) in strata.iter().enumerate() {
        current.gcd = gcd(current.gcd, stratum.weight);
        current
            .clauses
            .extend(stratum.indices.iter().map(|&j| (j, stratum.weight)));
        if current.gcd > suffix[i + 1] {
            groups.push(std::mem::replace(
                &mut current,
                Group {
                    clauses: Vec::new(),
                    gcd: 0,
                },
            ));
        }
    }
    if !current.clauses.is_empty() {
        groups.push(current);
    }
    groups
}

impl<S: MaxSatSolver> MaxSatSolver for Stratified<S> {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn supports_weights(&self) -> bool {
        true
    }

    fn set_shared_context(&mut self, ctx: SharedContext) {
        // Stage sub-instances carry *extra* hard clauses (stratum
        // freezes, hardened softs), so clauses learned here are not in
        // general implied by the canonical hards — exporting would be
        // unsound. Importing stays sound: the sub-instance hards
        // subsume the canonical ones.
        let ctx = ctx.import_only();
        self.inner.set_shared_context(ctx.clone());
        self.shared = Some(ctx);
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        let start = Instant::now();
        // Stage budgets share one clock and the caller's stop flags;
        // per-call conflict/propagation caps apply to each stage.
        let mut stage_budget = self.budget.child(start);
        if let Some(c) = self.budget.max_conflicts() {
            stage_budget = stage_budget.with_max_conflicts(c);
        }
        if let Some(p) = self.budget.max_propagations() {
            stage_budget = stage_budget.with_max_propagations(p);
        }
        let mut stats = MaxSatStats::default();

        let groups = partition(wcnf);
        if groups.is_empty() {
            // No soft clauses: the inner solver decides feasibility.
            self.inner.set_budget(self.budget.clone());
            let mut solution = self.inner.solve(wcnf);
            solution.stats.strata = 1;
            return solution;
        }

        // Hard clauses accumulate stratum freezes as stages complete.
        let mut hard: Vec<Vec<Lit>> = wcnf
            .hard_clauses()
            .iter()
            .map(|c| c.lits().to_vec())
            .collect();
        let mut num_vars = wcnf.num_vars();
        let mut total_cost: Weight = 0;
        let mut model = None;

        let finish = |status: MaxSatStatus,
                      cost: Option<Weight>,
                      lower_bound: Weight,
                      model: Option<coremax_cnf::Assignment>,
                      mut stats: MaxSatStats| {
            stats.wall_time = start.elapsed();
            MaxSatSolution {
                status,
                cost,
                model,
                lower_bound,
                stats,
            }
        };

        // Any model satisfying the (possibly frozen) hard clauses also
        // satisfies the original hard clauses, so it is a valid incumbent
        // for the original instance at its recomputed exact cost.
        let incumbent = |candidate: Option<coremax_cnf::Assignment>,
                         fallback: &Option<coremax_cnf::Assignment>| {
            let best = candidate
                .into_iter()
                .chain(fallback.clone())
                .filter_map(|m| wcnf.cost(&m).map(|c| (c, m)))
                .min_by_key(|&(c, _)| c);
            match best {
                Some((c, m)) => (Some(c), Some(m)),
                None => (None, None),
            }
        };

        let num_groups = groups.len();
        for (gi, group) in groups.into_iter().enumerate() {
            stats.strata += 1;
            let g = group.gcd.max(1);
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::StratumOpened {
                    index: gi as u64,
                    weight: g,
                    softs: group.clauses.len() as u64,
                });
            }
            let uniform = group.clauses.iter().all(|&(_, w)| w == group.clauses[0].1);
            let normalised_total: Weight = group
                .clauses
                .iter()
                .fold(0, |acc: Weight, &(_, w)| acc.saturating_add(w / g));

            // Build the stage sub-instance.
            let mut sub = WcnfFormula::with_vars(num_vars);
            for h in &hard {
                sub.add_hard(h.iter().copied());
            }
            let weighted_inner = !uniform
                && (self.inner.supports_weights() || normalised_total > self.replication_cap);
            for &(j, w) in &group.clauses {
                let lits = wcnf.soft_clauses()[j].clause.lits();
                if uniform {
                    sub.add_soft(lits.iter().copied(), 1);
                } else if weighted_inner {
                    sub.add_soft(lits.iter().copied(), w / g);
                } else {
                    for _ in 0..w / g {
                        sub.add_soft(lits.iter().copied(), 1);
                    }
                }
            }

            // Delegate. A weight-incapable inner solver only ever sees
            // unweighted sub-instances; mixed groups it cannot take go
            // to the internal weight-native fallback.
            let solution = if sub.is_unweighted() || self.inner.supports_weights() {
                self.inner.set_budget(stage_budget.clone());
                self.inner.solve(&sub)
            } else {
                let mut fallback = Wmsu1::new();
                fallback.set_budget(stage_budget.clone());
                if let Some(ctx) = &self.shared {
                    fallback.set_shared_context(ctx.clone());
                }
                fallback.solve(&sub)
            };
            stats.absorb(&solution.stats);
            match solution.status {
                MaxSatStatus::Infeasible => {
                    // Only the hard clauses can be contradictory: every
                    // later stage is feasible by the previous model.
                    return finish(MaxSatStatus::Infeasible, None, 0, None, stats);
                }
                MaxSatStatus::Unknown => {
                    // Completed stages are frozen at their exact optima
                    // and the interrupted stage certifies its own lb in
                    // normalised units: both add up to a sound global lb.
                    let lb = total_cost.saturating_add(solution.lower_bound.saturating_mul(g));
                    let (cost, best) = incumbent(solution.model, &model);
                    return finish(MaxSatStatus::Unknown, cost, lb, best, stats);
                }
                MaxSatStatus::Optimal => {}
            }
            let k_units = solution.cost.expect("optimal stage carries a cost");
            total_cost = total_cost.saturating_add(k_units.saturating_mul(g));
            model = solution.model;
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::StratumClosed {
                    index: gi as u64,
                    cost: k_units.saturating_mul(g),
                });
                coremax_obs::emit(coremax_obs::Event::Bounds {
                    lb: total_cost,
                    ub: None,
                });
            }

            if gi + 1 == num_groups {
                break;
            }
            // Freeze the stage optimum before descending.
            if k_units == 0 {
                // Hardening: the stage proved every clause satisfiable.
                for &(j, _) in &group.clauses {
                    hard.push(wcnf.soft_clauses()[j].clause.lits().to_vec());
                    stats.hardened += 1;
                }
            } else {
                let mut selectors: Vec<(Lit, Weight)> = Vec::with_capacity(group.clauses.len());
                for &(j, w) in &group.clauses {
                    let b = Lit::positive(Var::new(num_vars as u32));
                    num_vars += 1;
                    let mut relaxed = wcnf.soft_clauses()[j].clause.lits().to_vec();
                    relaxed.push(b);
                    hard.push(relaxed);
                    selectors.push((b, w / g));
                    stats.blocking_vars += 1;
                }
                let mut sink = CnfSink::new(num_vars);
                if uniform {
                    let lits: Vec<Lit> = selectors.iter().map(|&(b, _)| b).collect();
                    encode_at_most(
                        &lits,
                        usize::try_from(k_units).unwrap_or(usize::MAX),
                        self.encoding,
                        &mut sink,
                    );
                } else {
                    let terms: Vec<PbTerm> =
                        selectors.iter().map(|&(b, u)| PbTerm::new(u, b)).collect();
                    let bound = i64::try_from(k_units).unwrap_or(i64::MAX);
                    encode_pb(&PbConstraint::new(terms, PbOp::Le, bound), &mut sink);
                }
                num_vars = sink.num_vars();
                let freeze = sink.into_clauses();
                stats.cardinality_clauses += freeze.len() as u64;
                hard.extend(freeze);
            }
            if stage_budget.interrupted() {
                let (cost, best) = incumbent(None, &model);
                return finish(MaxSatStatus::Unknown, cost, total_cost, best, stats);
            }
        }

        finish(
            MaxSatStatus::Optimal,
            Some(total_cost),
            total_cost,
            model,
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_solution, BranchBound, Msu3, Msu4, Wmsu1};
    use coremax_cnf::dimacs;

    fn weighted(text: &str) -> WcnfFormula {
        dimacs::parse_wcnf(text).unwrap()
    }

    #[test]
    fn partition_respects_hardening_condition() {
        // Weights 100, 8, 4: 100 > 8+4·3 = 20 closes the first group;
        // gcd(8,4)=4 > 0 closes the rest only at the end.
        let mut w = WcnfFormula::with_vars(3);
        w.add_soft([Lit::positive(Var::new(0))], 100);
        w.add_soft([Lit::positive(Var::new(1))], 8);
        for _ in 0..3 {
            w.add_soft([Lit::positive(Var::new(2))], 4);
        }
        let groups = partition(&w);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].gcd, 100);
        assert_eq!(groups[0].clauses.len(), 1);
        assert_eq!(groups[1].gcd, 4);
        assert_eq!(groups[1].clauses.len(), 4);
    }

    #[test]
    fn partition_merges_non_dominating_weights() {
        // 10 does not dominate 9+1; gcd(10,9)=1 not > 1; one group.
        let mut w = WcnfFormula::with_vars(3);
        w.add_soft([Lit::positive(Var::new(0))], 10);
        w.add_soft([Lit::positive(Var::new(1))], 9);
        w.add_soft([Lit::positive(Var::new(2))], 1);
        let groups = partition(&w);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].gcd, 1);
    }

    #[test]
    fn unweighted_input_is_a_single_stratum_pass_through() {
        let cnf = dimacs::parse_cnf("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n").unwrap();
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        let s = Stratified::new(Msu3::new()).solve(&w);
        assert_eq!(s.cost, Some(2));
        assert_eq!(s.stats.strata, 1);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn dominating_weights_stratify_exactly() {
        // Conflicting pairs at three scales: optimum picks the lighter
        // of each pair = 1 + 10 + 100.
        let w = weighted("p wcnf 3 6\n1000 1 0\n100 -1 0\n70 2 0\n10 -2 0\n7 3 0\n1 -3 0\n");
        let s = Stratified::new(Msu4::v2()).solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(111));
        assert!(s.stats.strata >= 3, "strata = {}", s.stats.strata);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn non_dominating_weights_still_exact() {
        // The classic lexicographic trap: satisfying the weight-10
        // clause (x1) drags down the 9 *and* both 1s via the hard
        // implications. Naive per-weight lexicographic solving keeps
        // the 10 satisfied and answers 11; the gcd grouping merges the
        // non-dominating weights and answers the true optimum 10.
        let w = weighted("p wcnf 3 6 99\n99 -1 2 0\n99 -1 3 0\n10 1 0\n9 -1 0\n1 -2 0\n1 -3 0\n");
        let oracle = BranchBound::new().solve(&w);
        assert_eq!(oracle.cost, Some(10));
        for solution in [
            Stratified::new(Msu3::new()).solve(&w),
            Stratified::new(Msu4::v2()).solve(&w),
            Stratified::new(Wmsu1::new()).solve(&w),
        ] {
            assert_eq!(solution.cost, Some(10));
            assert!(verify_solution(&w, &solution));
        }
    }

    #[test]
    fn hardening_kicks_in_on_satisfiable_heavy_stratum() {
        let w = weighted("p wcnf 2 3 99\n99 1 2 0\n100 1 0\n1 -1 0\n");
        let s = Stratified::new(Msu3::new()).solve(&w);
        assert_eq!(s.cost, Some(1));
        assert!(s.stats.hardened >= 1);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn weight_capable_inner_gets_the_mixed_group_directly() {
        let w = weighted("p wcnf 3 4 99\n99 -1 -2 0\n10 1 0\n9 2 0\n1 3 0\n");
        let s = Stratified::new(BranchBound::new()).solve(&w);
        assert_eq!(s.cost, Some(9));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn replication_fallback_to_wmsu1_when_capped() {
        // Mixed non-dominating group with huge normalised weights: the
        // internal cap forces the Wmsu1 fallback, which must still be
        // exact.
        let w = weighted("p wcnf 3 4 9999999\n9999999 -1 -2 0\n500000 1 0\n499999 2 0\n2 3 0\n");
        let s = Stratified::new(Msu3::new())
            .with_replication_cap(10)
            .solve(&w);
        assert_eq!(s.cost, Some(499_999));
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn infeasible_propagates() {
        let w = weighted("p wcnf 1 3 9\n9 1 0\n9 -1 0\n5 1 0\n");
        let s = Stratified::new(Msu3::new()).solve(&w);
        assert_eq!(s.status, MaxSatStatus::Infeasible);
        assert!(verify_solution(&w, &s));
    }

    #[test]
    fn no_soft_clauses_delegates_feasibility() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        let s = Stratified::new(Msu3::new()).solve(&w);
        assert_eq!(s.status, MaxSatStatus::Optimal);
        assert_eq!(s.cost, Some(0));
        let mut infeasible = WcnfFormula::new();
        let y = infeasible.new_var();
        infeasible.add_hard([Lit::positive(y)]);
        infeasible.add_hard([Lit::negative(y)]);
        assert_eq!(
            Stratified::new(Msu3::new()).solve(&infeasible).status,
            MaxSatStatus::Infeasible
        );
    }

    #[test]
    fn agrees_with_branch_bound_on_random_weighted() {
        let mut seed = 0x0F1E_2D3C_4B5A_6978u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..15 {
            let num_vars = 3 + (next() % 3) as usize;
            let mut w = WcnfFormula::with_vars(num_vars);
            for _ in 0..(4 + next() % 6) {
                let len = 1 + (next() % 2) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new((next() % num_vars as u64) as u32), next() & 1 == 0))
                    .collect();
                // Power-of-two-flavoured weights: some domination, some
                // merging.
                w.add_soft(lits, 1 << (next() % 5));
            }
            let oracle = BranchBound::new().solve(&w);
            for solution in [
                Stratified::new(Msu3::new()).solve(&w),
                Stratified::new(Msu4::v2()).solve(&w),
            ] {
                assert_eq!(
                    solution.cost, oracle.cost,
                    "stratified wrong on round {round}"
                );
                assert!(verify_solution(&w, &solution));
            }
        }
    }

    #[test]
    fn budget_abort() {
        use std::time::Duration;
        let w = weighted("p wcnf 2 4\n3 1 0\n4 -1 0\n2 2 0\n5 -2 0\n");
        let mut solver = Stratified::new(Msu3::new());
        solver.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        assert_eq!(solver.solve(&w).status, MaxSatStatus::Unknown);
    }
}
