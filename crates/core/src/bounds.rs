//! Propositions 1 and 2 of the paper: MaxSAT bounds from disjoint
//! unsatisfiable cores and from satisfying assignments of the relaxed
//! formula.

use coremax_cnf::{CnfFormula, Lit};
use coremax_sat::{Budget, IncrementalSolver, SolveOutcome};

/// The result of a disjoint-core analysis (Proposition 1).
#[derive(Debug, Clone)]
pub struct DisjointCoreReport {
    /// Clause indices of each disjoint core found, in discovery order.
    pub cores: Vec<Vec<usize>>,
    /// Upper bound on the number of simultaneously satisfiable clauses:
    /// `|φ| − K` where `K` is the number of disjoint cores.
    pub upper_bound_satisfied: usize,
    /// Equivalently, a lower bound on the optimum cost (`K`).
    pub lower_bound_cost: usize,
    /// `true` if the analysis ran to completion (remaining formula
    /// satisfiable), `false` if the budget stopped it early (the bounds
    /// are still valid).
    pub complete: bool,
}

/// Computes disjoint unsatisfiable cores of `formula` by repeatedly
/// extracting a core and removing its clauses (Proposition 1: `K`
/// disjoint cores ⟹ at most `|φ| − K` clauses are satisfiable).
///
/// # Examples
///
/// ```
/// use coremax::disjoint_core_analysis;
/// use coremax_cnf::dimacs;
/// use coremax_sat::Budget;
///
/// // (x)(¬x)(y)(¬y): two disjoint cores.
/// let f = dimacs::parse_cnf("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n")?;
/// let report = disjoint_core_analysis(&f, &Budget::new());
/// assert_eq!(report.cores.len(), 2);
/// assert_eq!(report.upper_bound_satisfied, 2);
/// # Ok::<(), coremax_cnf::ParseDimacsError>(())
/// ```
#[must_use]
pub fn disjoint_core_analysis(formula: &CnfFormula, budget: &Budget) -> DisjointCoreReport {
    let start = std::time::Instant::now();
    let child_budget = budget.child(start);
    let mut cores: Vec<Vec<usize>> = Vec::new();
    let mut complete = false;

    // One persistent engine: every clause is registered as a selector-
    // managed soft, so "removing" a core is retiring its members — the
    // solver keeps its learned clauses and heuristic state between
    // extraction rounds instead of being rebuilt from scratch.
    let mut engine = IncrementalSolver::new();
    engine.ensure_vars(formula.num_vars());
    engine.set_budget(child_budget.clone());
    let handles: Vec<_> = formula
        .iter()
        .map(|c| engine.add_soft(c.lits().iter().copied()))
        .collect();

    loop {
        match engine.solve(&[]) {
            SolveOutcome::Sat => {
                complete = true;
                break;
            }
            SolveOutcome::Unknown => break,
            SolveOutcome::Unsat => {
                let failed = engine.failed_softs();
                if failed.is_empty() {
                    // Cannot happen — every clause is selector-gated, so
                    // the formula alone is satisfiable — but an empty
                    // core must not loop forever.
                    break;
                }
                let core: Vec<usize> = failed
                    .iter()
                    .filter_map(|id| handles.iter().position(|h| h == id))
                    .collect();
                for &i in &core {
                    engine.retire(handles[i]);
                }
                cores.push(core);
            }
        }
    }

    let k = cores.len();
    DisjointCoreReport {
        upper_bound_satisfied: formula.num_clauses() - k,
        lower_bound_cost: k,
        cores,
        complete,
    }
}

/// Proposition 2 helper: given a WCNF and a model of the blocked
/// relaxation, the number of blocking variables assigned 1 bounds the
/// optimum cost from above. Exposed mostly for documentation/tests; the
/// solvers use it inline.
#[must_use]
pub fn blocking_upper_bound(model: &coremax_cnf::Assignment, blockers: &[Lit]) -> usize {
    blockers.iter().filter(|&&b| model.satisfies(b)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{dimacs, Var, WcnfFormula};

    #[test]
    fn satisfiable_formula_no_cores() {
        let f = dimacs::parse_cnf("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let r = disjoint_core_analysis(&f, &Budget::new());
        assert!(r.cores.is_empty());
        assert_eq!(r.upper_bound_satisfied, 2);
        assert_eq!(r.lower_bound_cost, 0);
        assert!(r.complete);
    }

    #[test]
    fn two_disjoint_cores_found() {
        let f = dimacs::parse_cnf("p cnf 2 4\n1 0\n-1 0\n2 0\n-2 0\n").unwrap();
        let r = disjoint_core_analysis(&f, &Budget::new());
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.lower_bound_cost, 2);
        // Cores must be disjoint.
        let mut seen = std::collections::HashSet::new();
        for core in &r.cores {
            for &i in core {
                assert!(seen.insert(i), "clause {i} in two cores");
            }
        }
    }

    #[test]
    fn bound_is_sound_for_example2() {
        let f = dimacs::parse_cnf(
            "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
        )
        .unwrap();
        let r = disjoint_core_analysis(&f, &Budget::new());
        // True optimum: 6 satisfied / cost 2. The UB must be ≥ 6 and the
        // cost LB ≤ 2.
        assert!(r.upper_bound_satisfied >= 6);
        assert!(r.lower_bound_cost <= 2);
        assert!(r.lower_bound_cost >= 1);
    }

    #[test]
    fn blocking_upper_bound_counts() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        let _ = w;
        let b = Lit::positive(Var::new(5));
        let mut m = coremax_cnf::Assignment::for_vars(6);
        m.assign(Var::new(5), true);
        assert_eq!(blocking_upper_bound(&m, &[b]), 1);
        m.assign(Var::new(5), false);
        assert_eq!(blocking_upper_bound(&m, &[b]), 0);
    }
}
