//! SAT-based pseudo-Boolean optimisation by linear model-improving
//! search — the minisat+ strategy used as the paper's `pbo` baseline.

use coremax_cards::CnfSink;
use coremax_cnf::{Assignment, Lit, WcnfFormula};
use coremax_sat::{Budget, SolveOutcome, Solver};

use crate::constraint::{PbConstraint, PbOp, PbTerm};
use crate::encode::encode_pb;

/// Result of a [`PboSolver::solve`] run.
#[derive(Debug, Clone)]
pub enum PboOutcome {
    /// The optimum was proven.
    Optimal {
        /// A model attaining the optimum.
        model: Assignment,
        /// The objective value of that model.
        cost: u64,
    },
    /// The constraints are unsatisfiable regardless of the objective.
    Infeasible,
    /// The budget ran out; the best model found so far (if any) is
    /// reported.
    Unknown {
        /// Best (model, cost) discovered before exhaustion, if any.
        best: Option<(Assignment, u64)>,
    },
}

/// A pseudo-Boolean optimisation problem: CNF clauses plus PB
/// constraints as the feasible region, and a linear objective to
/// minimise.
///
/// Solved by iterative strengthening: find any model, then repeatedly
/// add `objective ≤ cost − 1` (BDD-encoded) until UNSAT; the last model
/// is optimal. This is minisat+'s default search strategy and the
/// behaviour the paper's §2.2 analysis (blocking-variable blow-up)
/// relies on.
#[derive(Debug)]
pub struct PboSolver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    constraints: Vec<PbConstraint>,
    objective: Vec<PbTerm>,
    budget: Budget,
    /// Statistics: SAT solver calls made by the last `solve`.
    sat_calls: u32,
}

impl PboSolver {
    /// Creates an empty problem over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        PboSolver {
            num_vars,
            clauses: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            budget: Budget::new(),
            sat_calls: 0,
        }
    }

    /// Adds a CNF clause constraint.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(c);
    }

    /// Adds a PB constraint.
    pub fn add_constraint(&mut self, constraint: PbConstraint) {
        for t in constraint.terms() {
            self.num_vars = self.num_vars.max(t.lit.var().index() + 1);
        }
        self.constraints.push(constraint);
    }

    /// Sets the linear objective `min Σ coeff·lit`.
    pub fn set_objective(&mut self, objective: Vec<PbTerm>) {
        for t in &objective {
            self.num_vars = self.num_vars.max(t.lit.var().index() + 1);
        }
        self.objective = objective;
    }

    /// Sets the resource budget for the whole optimisation run.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Number of variables (grows as constraints are added).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// SAT solver invocations performed by the most recent `solve`.
    #[must_use]
    pub fn sat_calls(&self) -> u32 {
        self.sat_calls
    }

    /// Evaluates the objective under `model`.
    #[must_use]
    pub fn objective_value(&self, model: &Assignment) -> u64 {
        self.objective
            .iter()
            .filter(|t| model.satisfies(t.lit))
            .map(|t| t.coeff)
            .sum()
    }

    /// Flips true objective literals to false where every clause and PB
    /// constraint (including the accumulated strengthening bounds)
    /// remains satisfied. Never increases the objective.
    fn minimise_model(&self, model: &mut Assignment, bounds: &[PbConstraint]) {
        for term in &self.objective {
            if !model.satisfies(term.lit) {
                continue;
            }
            model.assign_lit(!term.lit);
            let still_ok = self
                .clauses
                .iter()
                .all(|c| c.iter().any(|&l| model.satisfies(l)))
                && self.constraints.iter().all(|c| c.is_satisfied_by(model))
                && bounds.iter().all(|c| c.is_satisfied_by(model));
            if !still_ok {
                model.assign_lit(term.lit);
            }
        }
    }

    /// Runs the optimisation.
    pub fn solve(&mut self) -> PboOutcome {
        self.sat_calls = 0;
        let mut solver = Solver::new();
        solver.ensure_vars(self.num_vars);
        // Pin the budget to an absolute deadline so the whole iterative
        // search shares one clock (a relative timeout would restart at
        // every strengthening round).
        let mut budget = self.budget.child(std::time::Instant::now());
        if let Some(c) = self.budget.max_conflicts() {
            budget = budget.with_max_conflicts(c);
        }
        if let Some(p) = self.budget.max_propagations() {
            budget = budget.with_max_propagations(p);
        }
        solver.set_budget(budget);
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
        let mut sink = CnfSink::new(self.num_vars);
        for constraint in &self.constraints {
            encode_pb(constraint, &mut sink);
        }
        solver.ensure_vars(sink.num_vars());
        for c in sink.into_clauses() {
            solver.add_clause(c);
        }

        let mut best: Option<(Assignment, u64)> = None;
        let mut bounds_so_far: Vec<PbConstraint> = Vec::new();
        loop {
            self.sat_calls += 1;
            match solver.solve() {
                SolveOutcome::Sat => {
                    let mut model = solver.model().expect("model after SAT").clone();
                    // Greedy objective minimisation: flip objective
                    // literals to false where the clauses and PB
                    // constraints stay satisfied (a model may raise a
                    // blocking variable of a clause that is satisfied
                    // anyway). This is minisat+'s model-tightening step;
                    // without it the linear search descends one wasted
                    // objective unit per SAT call.
                    self.minimise_model(&mut model, &bounds_so_far);
                    let cost = self.objective_value(&model);
                    let improved = best.as_ref().is_none_or(|(_, b)| cost < *b);
                    if improved {
                        best = Some((model, cost));
                    }
                    if cost == 0 {
                        let (model, cost) = best.expect("cost-0 model recorded");
                        return PboOutcome::Optimal { model, cost };
                    }
                    // Strengthen: objective ≤ cost − 1.
                    let bound =
                        PbConstraint::new(self.objective.clone(), PbOp::Le, cost as i64 - 1);
                    let mut sink = CnfSink::new(solver.num_vars());
                    encode_pb(&bound, &mut sink);
                    bounds_so_far.push(bound);
                    solver.ensure_vars(sink.num_vars());
                    for c in sink.into_clauses() {
                        solver.add_clause(c);
                    }
                }
                SolveOutcome::Unsat => {
                    return match best.take() {
                        Some((model, cost)) => PboOutcome::Optimal { model, cost },
                        None => PboOutcome::Infeasible,
                    };
                }
                SolveOutcome::Unknown => return PboOutcome::Unknown { best: best.take() },
            }
        }
    }
}

/// Builds the PBO formulation of a (weighted, partial) MaxSAT instance:
/// every soft clause `ωᵢ` gets a fresh blocking variable `bᵢ` (Example 1
/// of the paper), hard clauses are kept verbatim, and the objective is
/// `min Σ wᵢ·bᵢ`.
///
/// The MaxSAT optimum equals `Σ wᵢ −` the PBO optimum; for unweighted
/// instances, "number of clauses − cost".
#[must_use]
pub fn maxsat_as_pbo(wcnf: &WcnfFormula) -> PboSolver {
    let mut pbo = PboSolver::new(wcnf.num_vars());
    for h in wcnf.hard_clauses() {
        pbo.add_clause(h.lits().iter().copied());
    }
    let mut objective = Vec::with_capacity(wcnf.num_soft());
    for (next, soft) in (wcnf.num_vars() as u32..).zip(wcnf.soft_clauses()) {
        let b = Lit::positive(coremax_cnf::Var::new(next));
        let mut clause: Vec<Lit> = soft.clause.lits().to_vec();
        clause.push(b);
        pbo.add_clause(clause);
        objective.push(PbTerm::new(soft.weight, b));
    }
    pbo.set_objective(objective);
    pbo
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn unconstrained_objective_is_zero() {
        let mut pbo = PboSolver::new(2);
        pbo.set_objective(vec![PbTerm::new(1, lit(1)), PbTerm::new(1, lit(2))]);
        match pbo.solve() {
            PboOutcome::Optimal { cost, .. } => assert_eq!(cost, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forced_costs_add_up() {
        // x1 forced true (cost 2), x2 free (cost 5 if true).
        let mut pbo = PboSolver::new(2);
        pbo.add_clause([lit(1)]);
        pbo.set_objective(vec![PbTerm::new(2, lit(1)), PbTerm::new(5, lit(2))]);
        match pbo.solve() {
            PboOutcome::Optimal { model, cost } => {
                assert_eq!(cost, 2);
                assert_eq!(model.value(Var::new(0)), Some(true));
                assert_eq!(model.value(Var::new(1)), Some(false));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut pbo = PboSolver::new(1);
        pbo.add_clause([lit(1)]);
        pbo.add_clause([lit(-1)]);
        assert!(matches!(pbo.solve(), PboOutcome::Infeasible));
    }

    #[test]
    fn pb_constraints_respected() {
        // minimise x1+x2+x3 s.t. x1+x2+x3 ≥ 2.
        let lits: Vec<Lit> = (1..=3).map(lit).collect();
        let mut pbo = PboSolver::new(3);
        pbo.add_constraint(PbConstraint::cardinality(&lits, PbOp::Ge, 2));
        pbo.set_objective(lits.iter().map(|&l| PbTerm::new(1, l)).collect());
        match pbo.solve() {
            PboOutcome::Optimal { cost, model } => {
                assert_eq!(cost, 2);
                let trues = (0..3)
                    .filter(|&i| model.value(Var::new(i)) == Some(true))
                    .count();
                assert_eq!(trues, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn weighted_choice_picks_cheaper() {
        // Exactly one of x1, x2; x1 costs 10, x2 costs 1.
        let lits2 = [lit(1), lit(2)];
        let mut pbo = PboSolver::new(2);
        pbo.add_constraint(PbConstraint::cardinality(&lits2, PbOp::Eq, 1));
        pbo.set_objective(vec![PbTerm::new(10, lit(1)), PbTerm::new(1, lit(2))]);
        match pbo.solve() {
            PboOutcome::Optimal { cost, model } => {
                assert_eq!(cost, 1);
                assert_eq!(model.value(Var::new(1)), Some(true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn maxsat_reduction_example1() {
        // Paper Example 1: optimum 2 of 3 ⟹ PBO cost 1.
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_soft([Lit::positive(x1)], 1);
        w.add_soft([Lit::positive(x2), Lit::negative(x1)], 1);
        w.add_soft([Lit::negative(x2)], 1);
        let mut pbo = maxsat_as_pbo(&w);
        match pbo.solve() {
            PboOutcome::Optimal { cost, .. } => assert_eq!(cost, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn maxsat_reduction_respects_hard_clauses() {
        // Hard: x1. Soft: ¬x1 (w=5), x2 (w=1). Optimal cost = 5 with x2
        // satisfied.
        let mut w = WcnfFormula::new();
        let x1 = w.new_var();
        let x2 = w.new_var();
        w.add_hard([Lit::positive(x1)]);
        w.add_soft([Lit::negative(x1)], 5);
        w.add_soft([Lit::positive(x2)], 1);
        let mut pbo = maxsat_as_pbo(&w);
        match pbo.solve() {
            PboOutcome::Optimal { cost, model } => {
                assert_eq!(cost, 5);
                assert_eq!(model.value(x1), Some(true));
                assert_eq!(model.value(x2), Some(true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_hard_clauses_reported() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        let mut pbo = maxsat_as_pbo(&w);
        assert!(matches!(pbo.solve(), PboOutcome::Infeasible));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        use std::time::Duration;
        // A moderately hard optimisation with a zero time budget.
        let mut w = WcnfFormula::new();
        let vars: Vec<Var> = (0..12).map(|_| w.new_var()).collect();
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                w.add_soft([Lit::negative(vars[i]), Lit::negative(vars[j])], 1);
            }
            w.add_soft([Lit::positive(vars[i])], 1);
        }
        let mut pbo = maxsat_as_pbo(&w);
        pbo.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        assert!(matches!(pbo.solve(), PboOutcome::Unknown { .. }));
    }

    #[test]
    fn sat_calls_counted() {
        let mut pbo = PboSolver::new(1);
        pbo.set_objective(vec![PbTerm::new(1, lit(1))]);
        let _ = pbo.solve();
        assert!(pbo.sat_calls() >= 1);
    }
}
