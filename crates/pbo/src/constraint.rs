//! Pseudo-Boolean constraint representation and normalisation.

use std::fmt;

use coremax_cnf::{Assignment, Lit};

/// One weighted literal `coeff · lit` in a PB constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbTerm {
    /// Positive coefficient.
    pub coeff: u64,
    /// The literal (counts `coeff` when true).
    pub lit: Lit,
}

impl PbTerm {
    /// Creates a term.
    #[must_use]
    pub fn new(coeff: u64, lit: Lit) -> Self {
        PbTerm { coeff, lit }
    }
}

/// Comparison operator of a PB constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbOp {
    /// `Σ ≤ bound`
    Le,
    /// `Σ ≥ bound`
    Ge,
    /// `Σ = bound`
    Eq,
}

impl fmt::Display for PbOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PbOp::Le => "≤",
            PbOp::Ge => "≥",
            PbOp::Eq => "=",
        })
    }
}

/// A normalised pseudo-Boolean constraint `Σ cᵢ·lᵢ ⋈ bound` with all
/// coefficients positive.
///
/// Signed inputs are normalised on construction using the identity
/// `−c·l = c·¬l − c` (flip the literal, adjust the bound).
///
/// # Examples
///
/// ```
/// use coremax_cnf::{Lit, Var};
/// use coremax_pbo::{PbConstraint, PbOp};
///
/// let x = Lit::positive(Var::new(0));
/// let y = Lit::positive(Var::new(1));
/// // 2x − 3y ≤ 1  ⟹  2x + 3¬y ≤ 4
/// let c = PbConstraint::from_signed(vec![(2, x), (-3, y)], PbOp::Le, 1);
/// assert_eq!(c.bound(), 4);
/// assert!(c.terms().iter().all(|t| t.coeff > 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbConstraint {
    terms: Vec<PbTerm>,
    op: PbOp,
    bound: i64,
}

impl PbConstraint {
    /// Creates a constraint from positive-coefficient terms.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is zero.
    #[must_use]
    pub fn new(terms: Vec<PbTerm>, op: PbOp, bound: i64) -> Self {
        assert!(
            terms.iter().all(|t| t.coeff > 0),
            "coefficients must be positive; use from_signed"
        );
        PbConstraint { terms, op, bound }
    }

    /// Creates a constraint from possibly-negative coefficients,
    /// normalising so every stored coefficient is positive.
    #[must_use]
    pub fn from_signed(terms: Vec<(i64, Lit)>, op: PbOp, mut bound: i64) -> Self {
        let mut normalised = Vec::with_capacity(terms.len());
        for (c, l) in terms {
            match c.cmp(&0) {
                std::cmp::Ordering::Greater => normalised.push(PbTerm::new(c as u64, l)),
                std::cmp::Ordering::Less => {
                    normalised.push(PbTerm::new((-c) as u64, !l));
                    bound -= c; // bound + |c|
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        PbConstraint {
            terms: normalised,
            op,
            bound,
        }
    }

    /// Builds the cardinality constraint `Σ lits ⋈ k`.
    #[must_use]
    pub fn cardinality(lits: &[Lit], op: PbOp, k: u64) -> Self {
        PbConstraint {
            terms: lits.iter().map(|&l| PbTerm::new(1, l)).collect(),
            op,
            bound: k as i64,
        }
    }

    /// The (positive-coefficient) terms.
    #[must_use]
    pub fn terms(&self) -> &[PbTerm] {
        &self.terms
    }

    /// The comparison operator.
    #[must_use]
    pub fn op(&self) -> PbOp {
        self.op
    }

    /// The right-hand side after normalisation.
    #[must_use]
    pub fn bound(&self) -> i64 {
        self.bound
    }

    /// Sum of all coefficients (the maximum LHS value).
    #[must_use]
    pub fn coeff_sum(&self) -> u64 {
        self.terms.iter().map(|t| t.coeff).sum()
    }

    /// Returns `true` if the constraint can never be violated.
    #[must_use]
    pub fn is_trivially_true(&self) -> bool {
        match self.op {
            PbOp::Le => self.bound >= self.coeff_sum() as i64,
            PbOp::Ge => self.bound <= 0,
            PbOp::Eq => self.terms.is_empty() && self.bound == 0,
        }
    }

    /// Returns `true` if the constraint can never be satisfied.
    #[must_use]
    pub fn is_trivially_false(&self) -> bool {
        match self.op {
            PbOp::Le => self.bound < 0,
            PbOp::Ge => self.bound > self.coeff_sum() as i64,
            PbOp::Eq => self.bound < 0 || self.bound > self.coeff_sum() as i64,
        }
    }

    /// Evaluates the LHS under a total assignment.
    #[must_use]
    pub fn lhs_value(&self, assignment: &Assignment) -> u64 {
        self.terms
            .iter()
            .filter(|t| assignment.satisfies(t.lit))
            .map(|t| t.coeff)
            .sum()
    }

    /// Evaluates the constraint under a total assignment.
    #[must_use]
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        let lhs = self.lhs_value(assignment) as i64;
        match self.op {
            PbOp::Le => lhs <= self.bound,
            PbOp::Ge => lhs >= self.bound,
            PbOp::Eq => lhs == self.bound,
        }
    }
}

impl fmt::Display for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}·{}", t.coeff, t.lit)?;
        }
        write!(f, " {} {}", self.op, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    fn lit(i: u32, pos: bool) -> Lit {
        Lit::new(Var::new(i), pos)
    }

    #[test]
    fn signed_normalisation() {
        // -2x + 3y ≥ 1  ⟹  2¬x + 3y ≥ 3
        let c = PbConstraint::from_signed(vec![(-2, lit(0, true)), (3, lit(1, true))], PbOp::Ge, 1);
        assert_eq!(c.bound(), 3);
        assert_eq!(c.terms().len(), 2);
        assert_eq!(c.terms()[0].lit, lit(0, false));
        assert_eq!(c.terms()[0].coeff, 2);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let c = PbConstraint::from_signed(vec![(0, lit(0, true)), (1, lit(1, true))], PbOp::Le, 1);
        assert_eq!(c.terms().len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn new_rejects_zero_coeff() {
        let _ = PbConstraint::new(vec![PbTerm::new(0, lit(0, true))], PbOp::Le, 1);
    }

    #[test]
    fn triviality_checks() {
        let x = lit(0, true);
        let le = PbConstraint::cardinality(&[x], PbOp::Le, 5);
        assert!(le.is_trivially_true());
        let ge = PbConstraint::cardinality(&[x], PbOp::Ge, 2);
        assert!(ge.is_trivially_false());
        let normal = PbConstraint::cardinality(&[x], PbOp::Le, 0);
        assert!(!normal.is_trivially_true());
        assert!(!normal.is_trivially_false());
    }

    #[test]
    fn evaluation() {
        let c = PbConstraint::from_signed(vec![(2, lit(0, true)), (3, lit(1, true))], PbOp::Le, 3);
        let a = Assignment::from_bools(&[true, false]);
        assert_eq!(c.lhs_value(&a), 2);
        assert!(c.is_satisfied_by(&a));
        let b = Assignment::from_bools(&[true, true]);
        assert_eq!(c.lhs_value(&b), 5);
        assert!(!c.is_satisfied_by(&b));
    }

    #[test]
    fn eq_semantics() {
        let c = PbConstraint::cardinality(&[lit(0, true), lit(1, true)], PbOp::Eq, 1);
        assert!(c.is_satisfied_by(&Assignment::from_bools(&[true, false])));
        assert!(!c.is_satisfied_by(&Assignment::from_bools(&[true, true])));
        assert!(!c.is_satisfied_by(&Assignment::from_bools(&[false, false])));
    }

    #[test]
    fn display() {
        let c = PbConstraint::cardinality(&[lit(0, true)], PbOp::Ge, 1);
        assert_eq!(c.to_string(), "1·x1 ≥ 1");
    }
}
