//! Pseudo-Boolean constraints and a SAT-based PBO optimiser.
//!
//! Section 2.2 of Marques-Silva & Planes (DATE 2008) describes the
//! baseline the paper calls **pbo**: translate a MaxSAT instance to
//! Pseudo-Boolean Optimisation by adding one blocking variable per
//! clause and minimising the number of blocking variables set to 1,
//! then hand the result to minisat+. This crate rebuilds that pipeline:
//!
//! - [`PbConstraint`]: normalised pseudo-Boolean constraints
//!   `Σ cᵢ·lᵢ ⋈ b` with positive coefficients,
//! - BDD translation of PB constraints to CNF (Eén & Sörensson §4),
//! - [`PboSolver`]: iterative model-improving linear search on the
//!   objective, exactly minisat+'s default strategy,
//! - [`maxsat_as_pbo`]: the blocking-variable reduction of Example 1.
//!
//! # Examples
//!
//! Minimise `b₁+b₂+b₃` subject to the relaxed formula of the paper's
//! Example 1:
//!
//! ```
//! use coremax_cnf::{Lit, Var, WcnfFormula};
//! use coremax_pbo::{maxsat_as_pbo, PboOutcome};
//!
//! let mut w = WcnfFormula::new();
//! let x1 = w.new_var();
//! let x2 = w.new_var();
//! w.add_soft([Lit::positive(x1)], 1);
//! w.add_soft([Lit::positive(x2), Lit::negative(x1)], 1);
//! w.add_soft([Lit::negative(x2)], 1);
//! let mut pbo = maxsat_as_pbo(&w);
//! match pbo.solve() {
//!     PboOutcome::Optimal { cost, .. } => assert_eq!(cost, 1),
//!     other => panic!("expected optimum, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod encode;
mod solver;

pub use constraint::{PbConstraint, PbOp, PbTerm};
pub use encode::encode_pb;
pub use solver::{maxsat_as_pbo, PboOutcome, PboSolver};
