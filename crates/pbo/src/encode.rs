//! BDD translation of pseudo-Boolean constraints to CNF.
//!
//! Eén & Sörensson (JSAT 2006) §4: the constraint `Σ cᵢ·lᵢ ≤ b` is a
//! monotone pseudo-Boolean function; its ROBDD under a fixed variable
//! order has one node per distinct reachable "interval" of partial sums.
//! We build it top-down with memoisation on `(index, accumulated sum)`
//! and Tseitin-encode each node as an ITE gate. Coefficients are sorted
//! descending first, which tends to maximise node sharing.

use std::collections::HashMap;

use coremax_cards::CnfSink;
use coremax_cnf::Lit;

use crate::constraint::{PbConstraint, PbOp};

/// Encodes `constraint` into CNF clauses appended to `sink`.
///
/// `Ge` constraints are rewritten as `Le` over negated literals and `Eq`
/// as the conjunction of both directions. Trivially-true constraints
/// emit nothing; trivially-false ones emit the empty clause.
pub fn encode_pb(constraint: &PbConstraint, sink: &mut CnfSink) {
    if constraint.is_trivially_true() {
        return;
    }
    if constraint.is_trivially_false() {
        sink.add_clause(Vec::new());
        return;
    }
    match constraint.op() {
        PbOp::Le => encode_le(constraint, sink),
        PbOp::Ge => {
            let flipped = flip_ge(constraint);
            encode_le(&flipped, sink);
        }
        PbOp::Eq => {
            let le = PbConstraint::new(constraint.terms().to_vec(), PbOp::Le, constraint.bound());
            let ge = PbConstraint::new(constraint.terms().to_vec(), PbOp::Ge, constraint.bound());
            encode_pb(&le, sink);
            encode_pb(&ge, sink);
        }
    }
}

/// `Σ c·l ≥ b` ⟺ `Σ c·¬l ≤ Σc − b`.
fn flip_ge(c: &PbConstraint) -> PbConstraint {
    let terms = c
        .terms()
        .iter()
        .map(|t| crate::PbTerm::new(t.coeff, !t.lit))
        .collect();
    PbConstraint::new(terms, PbOp::Le, c.coeff_sum() as i64 - c.bound())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    True,
    False,
    Node(Lit),
}

fn encode_le(constraint: &PbConstraint, sink: &mut CnfSink) {
    debug_assert_eq!(constraint.op(), PbOp::Le);
    debug_assert!(constraint.bound() >= 0);
    let mut terms = constraint.terms().to_vec();
    terms.sort_by_key(|t| std::cmp::Reverse(t.coeff));
    let bound = constraint.bound() as u64;
    // Suffix coefficient sums for the "rest always fits" terminal test.
    let mut suffix = vec![0u64; terms.len() + 1];
    for i in (0..terms.len()).rev() {
        suffix[i] = suffix[i + 1] + terms[i].coeff;
    }
    let mut memo: HashMap<(usize, u64), NodeRef> = HashMap::new();
    let root = build(&terms, bound, &suffix, 0, 0, &mut memo, sink);
    match root {
        NodeRef::True => {}
        NodeRef::False => sink.add_clause(Vec::new()),
        NodeRef::Node(l) => sink.add_clause(vec![l]),
    }
}

#[allow(clippy::too_many_arguments)]
fn build(
    terms: &[crate::PbTerm],
    bound: u64,
    suffix: &[u64],
    i: usize,
    sum: u64,
    memo: &mut HashMap<(usize, u64), NodeRef>,
    sink: &mut CnfSink,
) -> NodeRef {
    if sum > bound {
        return NodeRef::False;
    }
    if sum + suffix[i] <= bound {
        return NodeRef::True;
    }
    if let Some(&n) = memo.get(&(i, sum)) {
        return n;
    }
    debug_assert!(i < terms.len());
    let cond = terms[i].lit;
    let hi = build(
        terms,
        bound,
        suffix,
        i + 1,
        sum + terms[i].coeff,
        memo,
        sink,
    );
    let lo = build(terms, bound, suffix, i + 1, sum, memo, sink);
    let node = encode_ite(cond, hi, lo, sink);
    memo.insert((i, sum), node);
    node
}

/// Tseitin `t ⇔ ITE(c, a, b)` with terminal simplification (same gate
/// library as the cardinality BDD encoder).
fn encode_ite(c: Lit, a: NodeRef, b: NodeRef, sink: &mut CnfSink) -> NodeRef {
    use NodeRef::{False, Node, True};
    match (a, b) {
        (True, True) => True,
        (False, False) => False,
        (True, False) => Node(c),
        (False, True) => Node(!c),
        (True, Node(bl)) => {
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!c, t]);
            sink.add_clause(vec![!bl, t]);
            sink.add_clause(vec![c, bl, !t]);
            Node(t)
        }
        (False, Node(bl)) => {
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!t, !c]);
            sink.add_clause(vec![!t, bl]);
            sink.add_clause(vec![c, !bl, t]);
            Node(t)
        }
        (Node(al), True) => {
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![c, t]);
            sink.add_clause(vec![!al, t]);
            sink.add_clause(vec![!c, al, !t]);
            Node(t)
        }
        (Node(al), False) => {
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!t, c]);
            sink.add_clause(vec![!t, al]);
            sink.add_clause(vec![!c, !al, t]);
            Node(t)
        }
        (Node(al), Node(bl)) => {
            if al == bl {
                return Node(al);
            }
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!c, !al, t]);
            sink.add_clause(vec![!c, al, !t]);
            sink.add_clause(vec![c, !bl, t]);
            sink.add_clause(vec![c, bl, !t]);
            sink.add_clause(vec![!al, !bl, t]);
            sink.add_clause(vec![al, bl, !t]);
            Node(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PbTerm;
    use coremax_cnf::Var;
    use coremax_sat::{SolveOutcome, Solver};

    fn lit(i: u32) -> Lit {
        Lit::positive(Var::new(i))
    }

    /// Exhaustively checks that the encoding is exact for a constraint
    /// over `n` variables.
    fn check(constraint: &PbConstraint, n: usize) {
        let mut sink = CnfSink::new(n);
        encode_pb(constraint, &mut sink);
        for bits in 0u32..(1 << n) {
            let mut solver = Solver::new();
            solver.ensure_vars(sink.num_vars());
            for c in sink.clauses() {
                solver.add_clause(c.iter().copied());
            }
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| Lit::new(Var::new(i as u32), bits >> i & 1 == 1))
                .collect();
            let sat = solver.solve_with_assumptions(&assumptions) == SolveOutcome::Sat;
            let mut assignment = coremax_cnf::Assignment::for_vars(n);
            for (i, &a) in assumptions.iter().enumerate() {
                assignment.assign(Var::new(i as u32), a.is_positive());
            }
            assert_eq!(
                sat,
                constraint.is_satisfied_by(&assignment),
                "{constraint} bits={bits:b}"
            );
        }
    }

    #[test]
    fn le_exact() {
        // 3x0 + 2x1 + 1x2 ≤ 3
        let c = PbConstraint::new(
            vec![
                PbTerm::new(3, lit(0)),
                PbTerm::new(2, lit(1)),
                PbTerm::new(1, lit(2)),
            ],
            PbOp::Le,
            3,
        );
        check(&c, 3);
    }

    #[test]
    fn ge_exact() {
        // 2x0 + 2x1 + 3x2 ≥ 4
        let c = PbConstraint::new(
            vec![
                PbTerm::new(2, lit(0)),
                PbTerm::new(2, lit(1)),
                PbTerm::new(3, lit(2)),
            ],
            PbOp::Ge,
            4,
        );
        check(&c, 3);
    }

    #[test]
    fn eq_exact() {
        let c = PbConstraint::new(
            vec![
                PbTerm::new(1, lit(0)),
                PbTerm::new(2, lit(1)),
                PbTerm::new(3, lit(2)),
                PbTerm::new(4, lit(3)),
            ],
            PbOp::Eq,
            5,
        );
        check(&c, 4);
    }

    #[test]
    fn mixed_polarity_exact() {
        let c = PbConstraint::from_signed(
            vec![(2, lit(0)), (-3, lit(1)), (1, lit(2)), (-1, lit(3))],
            PbOp::Le,
            0,
        );
        check(&c, 4);
    }

    #[test]
    fn cardinality_special_case_matches() {
        let lits: Vec<Lit> = (0..5).map(lit).collect();
        let c = PbConstraint::cardinality(&lits, PbOp::Le, 2);
        check(&c, 5);
    }

    #[test]
    fn trivially_true_emits_nothing() {
        let c = PbConstraint::new(vec![PbTerm::new(1, lit(0))], PbOp::Le, 10);
        let mut sink = CnfSink::new(1);
        encode_pb(&c, &mut sink);
        assert_eq!(sink.num_clauses(), 0);
    }

    #[test]
    fn trivially_false_emits_empty_clause() {
        let c = PbConstraint::new(vec![PbTerm::new(1, lit(0))], PbOp::Ge, 5);
        let mut sink = CnfSink::new(1);
        encode_pb(&c, &mut sink);
        assert_eq!(sink.num_clauses(), 1);
        assert!(sink.clauses()[0].is_empty());
    }

    #[test]
    fn memoisation_bounds_node_count() {
        // Uniform coefficients: the BDD is the cardinality grid.
        let lits: Vec<Lit> = (0..20).map(lit).collect();
        let c = PbConstraint::cardinality(&lits, PbOp::Le, 4);
        let mut sink = CnfSink::new(20);
        encode_pb(&c, &mut sink);
        assert!(sink.num_vars() - 20 <= 20 * 5);
    }
}
