//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace's property tests use.
//!
//! The container has no crates.io access, so the workspace vendors this
//! stub instead of the real crate. It keeps the same surface —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Strategy` (with `prop_map`/`prop_flat_map`/`boxed`), `Just`,
//! `any::<T>()`, integer-range and tuple strategies,
//! `prop::collection::vec`, simple char-class regex string strategies,
//! and `ProptestConfig::with_cases` — but generates cases with a
//! deterministic SplitMix64 stream and reports failures by panicking
//! (no shrinking). Each failing case prints its case index and seed so
//! a run can be reproduced by reading the panic message.

use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy, used by `prop_oneof!` to mix heterogeneous arms.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; backs `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 random mantissa bits scaled onto [start, end).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// Tuples of strategies are strategies over tuples of values.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `any::<T>()` — full-domain strategy for primitives.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

#[derive(Clone)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Regex-ish string strategies
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, supporting the subset of
/// regex the tests use: a single char class with a `{min,max}` counted
/// repetition, e.g. `"[ \t\r\np0-9cw%-]{0,120}"`. Escapes `\t`, `\r`,
/// `\n`, `\\`, and `a-b` ranges are understood inside the class; a `-`
/// first or last is literal.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let quant = &rest[close + 1..];

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            alphabet.push(match class[i + 1] {
                't' => '\t',
                'r' => '\r',
                'n' => '\n',
                other => other,
            });
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (c as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    // Quantifier: `{m,n}`, `{m}`, or absent (single char).
    let (min, max) = if quant.is_empty() {
        (1, 1)
    } else {
        let body = quant.strip_prefix('{')?.strip_suffix('}')?;
        match body.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let m: usize = body.trim().parse().ok()?;
                (m, m)
            }
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The body of each generated test runs `config.cases` times with values
/// drawn from the named strategies. Failures panic immediately (no
/// shrinking); the panic message includes the case index and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Derive a per-test seed from the test name so streams differ
            // between tests but stay stable across runs.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    seed.wrapping_add(case as u64),
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                let run = || {
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                ) {
                    eprintln!(
                        "proptest case {case} of {} failed (seed {seed:#x}) in {}",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Like `assert!`, but named so property-test bodies read as upstream.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategy arms (all arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirrors proptest's `prelude::prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_class_parses() {
        let (alphabet, min, max) = super::parse_class_pattern("[ \t\r\np0-9cw%-]{0,120}").unwrap();
        assert_eq!((min, max), (0, 120));
        assert!(alphabet.contains(&'\t'));
        assert!(alphabet.contains(&'7'));
        assert!(alphabet.contains(&'-'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0..10i32, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn oneof_and_flat_map(x in (1..=4i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)])) {
            prop_assert!(x != 0 && x.abs() <= 4);
        }

        #[test]
        fn string_strategy(s in "[ab]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
