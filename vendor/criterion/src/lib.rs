//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The container has no crates.io access, so the workspace vendors this
//! stub instead of the real crate. It implements `Criterion`,
//! `benchmark_group`, `bench_with_input`/`bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple mean over `sample_size` samples of
//! batched iterations — good enough for relative comparisons in a dev
//! container, with none of criterion's statistics, plotting, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            settings,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&settings, id, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&self.settings, &label, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&self.settings, &label, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, label: &str, mut f: F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up: run and grow the per-sample iteration count until one
    // invocation costs a measurable slice of the warm-up budget.
    let warm_up_start = Instant::now();
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if warm_up_start.elapsed() >= settings.warm_up_time {
            break;
        }
        if bencher.elapsed < settings.warm_up_time / 20 {
            bencher.iters = (bencher.iters * 2).min(1 << 20);
        }
    }

    let mut samples = Vec::with_capacity(settings.sample_size);
    let measure_start = Instant::now();
    for _ in 0..settings.sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        if measure_start.elapsed() > settings.measurement_time * 4 {
            break; // Runaway benchmark: report what we have.
        }
    }

    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} mean {:>12} median {:>12} ({} samples x {} iters)",
        format_time(mean),
        format_time(median),
        samples.len(),
        bencher.iters,
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a group of benchmark functions. Both upstream forms are
/// accepted: positional (`criterion_group!(benches, f, g)`) and keyed
/// (`criterion_group!(name = benches; config = expr; targets = f, g)`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let settings = Settings {
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        run_one(&settings, "smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("refute", "php");
        assert_eq!(id.id, "refute/php");
    }
}
