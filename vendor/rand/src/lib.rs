//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! and `Rng::gen_range` over integer ranges.
//!
//! The container has no crates.io access, so the workspace vendors this
//! stub instead of the real crate. The generator is SplitMix64 — not
//! cryptographic, but deterministic per seed, which is all the builders,
//! instance families, and debug fault injectors need.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi_exclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi_exclusive: Self) -> Self {
                assert!(lo < hi_exclusive, "gen_range called with empty range");
                let span = (hi_exclusive as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                // i128 arithmetic sidesteps overflow at the type's MAX.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG (SplitMix64). Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_not_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let flips: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(flips.iter().any(|&b| b));
        assert!(flips.iter().any(|&b| !b));
    }
}
