//! DIMACS workflow: generate a benchmark instance, write it to WCNF,
//! read it back, solve it, and verify the solution — the round trip a
//! downstream user scripting this library would follow.
//!
//! Run with: `cargo run --example dimacs_tool [-- <family>]` where
//! `<family>` is one of `bmc`, `equiv`, `php`, `xor` (default `php`).

use coremax::{verify_solution, MaxSatSolver, Msu4};
use coremax_cnf::{dimacs, WcnfFormula};
use coremax_instances::{bmc_instance, equiv_instance, pigeonhole, xor_chain};

fn main() {
    let family = std::env::args().nth(1).unwrap_or_else(|| "php".to_string());
    let cnf = match family.as_str() {
        "bmc" => bmc_instance(2, 3),
        "equiv" => equiv_instance(0, 2),
        "xor" => xor_chain(7),
        _ => pigeonhole(3),
    };
    println!(
        "generated `{family}`: {} vars, {} clauses",
        cnf.num_vars(),
        cnf.num_clauses()
    );

    // Serialise as WCNF (all clauses soft) and round-trip through text.
    let wcnf = WcnfFormula::from_cnf_all_soft(&cnf);
    let text = dimacs::write_wcnf(&wcnf);
    println!("--- first lines of the WCNF ---");
    for line in text.lines().take(5) {
        println!("{line}");
    }
    let reparsed = dimacs::parse_wcnf(&text).expect("own output parses");
    assert_eq!(reparsed, wcnf, "round trip must be lossless");

    let mut solver = Msu4::v2();
    let solution = solver.solve(&reparsed);
    let cost = solution.cost.expect("finite instance");
    println!(
        "msu4-v2: cost {cost} ({} of {} clauses satisfiable), {}",
        reparsed.num_soft() as u64 - cost,
        reparsed.num_soft(),
        solution.stats
    );
    assert!(
        verify_solution(&reparsed, &solution),
        "solution must verify"
    );
    println!("solution verified ✓");
}
