//! Bounded model checking with unsatisfiable-core inspection: the
//! workflow behind the paper's model-checking benchmark family, plus the
//! Proposition-1 disjoint-core bound and deletion-based minimisation.
//!
//! Run with: `cargo run --release --example bmc_cores`

use coremax::{disjoint_core_analysis, minimize_core};
use coremax_circuits::{seq, tseitin};
use coremax_cnf::WcnfFormula;
use coremax_sat::{Budget, SolveOutcome, Solver};

fn main() {
    // A 3-bit counter with a safety property that always holds.
    let machine = seq::counter_with_safe_property(3);
    let width = machine.core.outputs().len();
    println!(
        "machine: {} registers, {} gates in the combinational core",
        machine.num_registers(),
        machine.core.num_gates()
    );

    for depth in [2usize, 4, 8] {
        let unrolled = seq::unroll(&machine, depth);
        let enc = tseitin::encode(&unrolled);
        let mut formula = enc.formula.clone();
        let violations: Vec<_> = (0..depth)
            .map(|t| enc.output_lits[(t + 1) * width - 1])
            .collect();
        formula.add_clause(violations);

        let mut solver = Solver::new();
        solver.add_formula(&formula);
        assert_eq!(solver.solve(), SolveOutcome::Unsat, "property must hold");
        let core = solver.unsat_core().expect("core").to_vec();
        let indices: Vec<usize> = core.iter().map(|id| id.index()).collect();
        let minimal = minimize_core(&formula, &indices, &Budget::new());
        println!(
            "depth {depth}: {} clauses, raw core {}, minimal core {} ({} conflicts)",
            formula.num_clauses(),
            core.len(),
            minimal.len(),
            solver.stats().conflicts
        );

        // The MaxSAT view of the same instance (Proposition 1): how many
        // disjoint refutations does it contain?
        let report = disjoint_core_analysis(&formula, &Budget::new());
        let wcnf = WcnfFormula::from_cnf_all_soft(&formula);
        println!(
            "  Prop. 1: {} disjoint core(s) → at most {} of {} clauses satisfiable",
            report.cores.len(),
            report.upper_bound_satisfied,
            wcnf.num_soft()
        );
    }
}
