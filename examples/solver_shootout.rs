//! Miniature version of the paper's evaluation: every solver on a
//! small suite, with a per-instance time budget, printing a
//! Table-1-style summary.
//!
//! Run with: `cargo run --release --example solver_shootout`

use std::time::Duration;

use coremax::{
    BinarySearchSat, BranchBound, LinearSearchSat, MaxSatSolver, MaxSatStatus, Msu1, Msu2, Msu3,
    Msu4, Msu4Incremental, PboBaseline,
};
use coremax_instances::{full_suite, SuiteConfig};
use coremax_sat::Budget;

fn main() {
    let suite = full_suite(&SuiteConfig::default());
    println!("suite: {} instances", suite.len());

    let solvers: Vec<Box<dyn MaxSatSolver>> = vec![
        Box::new(BranchBound::new()),
        Box::new(PboBaseline::new()),
        Box::new(Msu1::new()),
        Box::new(Msu2::new()),
        Box::new(Msu3::new()),
        Box::new(Msu4::v1()),
        Box::new(Msu4::v2()),
        Box::new(Msu4Incremental::new()),
        Box::new(LinearSearchSat::new()),
        Box::new(BinarySearchSat::new()),
    ];

    let budget_ms = 1_000;
    println!("per-instance budget: {budget_ms} ms\n");
    println!(
        "{:<12} {:>7} {:>8} {:>10}",
        "solver", "solved", "aborted", "time(ms)"
    );

    for mut solver in solvers {
        let mut solved = 0usize;
        let mut aborted = 0usize;
        let mut total_ms = 0u128;
        for instance in &suite {
            solver.set_budget(Budget::new().with_timeout(Duration::from_millis(budget_ms)));
            let solution = solver.solve(&instance.wcnf);
            total_ms += solution.stats.wall_time.as_millis();
            match solution.status {
                MaxSatStatus::Optimal => solved += 1,
                MaxSatStatus::Unknown => aborted += 1,
                MaxSatStatus::Infeasible => {
                    panic!("{}: generated instances are feasible", instance.name)
                }
            }
        }
        println!(
            "{:<12} {:>7} {:>8} {:>10}",
            solver.name(),
            solved,
            aborted,
            total_ms
        );
    }
}
