//! Design debugging with MaxSAT — the paper's motivating application
//! (Safarpour et al., FMCAD'07).
//!
//! 1. Build a golden 4-bit ripple-carry adder.
//! 2. Inject a gate-type error ("the designer used OR instead of XOR").
//! 3. Simulate the golden design on a few vectors; the buggy design
//!    disagrees.
//! 4. Encode: observed I/O = hard clauses, buggy netlist gate clauses =
//!    soft. MaxSAT finds the fewest gate-clause violations explaining
//!    all observations, pointing at candidate error sites.
//!
//! Run with: `cargo run --example design_debugging`

use coremax::{MaxSatSolver, Msu4};
use coremax_circuits::{builders, debug};

fn main() {
    let reference = builders::ripple_carry_adder(4);
    println!(
        "golden adder: {} inputs, {} gates",
        reference.num_inputs(),
        reference.num_gates()
    );

    let (buggy, bug_gate) = debug::mutate_gate(&reference, 0xC0FFEE).expect("adder has gates");
    println!(
        "injected bug: gate {bug_gate} changed {:?} -> {:?}",
        reference.gates()[bug_gate],
        buggy.gates()[bug_gate]
    );

    // Show a disagreeing vector.
    for value in 0..(1u32 << 8) {
        let inputs: Vec<bool> = (0..8).map(|i| value >> i & 1 == 1).collect();
        if reference.eval(&inputs) != buggy.eval(&inputs) {
            println!("first failing input vector: {inputs:?}");
            break;
        }
    }

    let instance =
        debug::debug_instance(&reference, &buggy, bug_gate, 4, 7).expect("interfaces match");
    println!(
        "debug WCNF: {} hard observation clauses, {} soft gate clauses",
        instance.wcnf.num_hard(),
        instance.wcnf.num_soft()
    );

    let mut solver = Msu4::v2();
    let solution = solver.solve(&instance.wcnf);
    let cost = solution.cost.expect("debug instances are feasible");
    println!(
        "msu4-v2: minimum explanation discards {cost} gate clauses \
         (bug-gate budget {}), {} SAT calls, {} cores",
        instance.cost_upper_bound, solution.stats.sat_calls, solution.stats.cores
    );
    assert!(cost <= instance.cost_upper_bound);
    println!("status: {}", solution.status);
}
