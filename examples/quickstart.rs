//! Quickstart: solve the paper's running example with msu4.
//!
//! Builds the CNF of Example 2 (Marques-Silva & Planes, DATE'08, §3.3),
//! runs both msu4 variants, and prints the optimum plus solver
//! statistics.
//!
//! Run with: `cargo run --example quickstart`

use coremax::{MaxSatSolver, Msu4};
use coremax_cnf::{dimacs, WcnfFormula};

fn main() {
    // Example 2 of the paper: 8 clauses over 4 variables, optimum 6.
    let text = "c DATE'08 Example 2\n\
                p cnf 4 8\n\
                1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n";
    let cnf = dimacs::parse_cnf(text).expect("embedded DIMACS is valid");
    let wcnf = WcnfFormula::from_cnf_all_soft(&cnf);

    println!(
        "instance: {} variables, {} clauses",
        wcnf.num_vars(),
        wcnf.num_soft()
    );

    for mut solver in [Msu4::v1(), Msu4::v2()] {
        let name = solver.name();
        let solution = solver.solve(&wcnf);
        let cost = solution.cost.expect("optimum for a finite instance");
        println!(
            "{name}: {} of {} clauses satisfiable (cost {cost}) — {}",
            wcnf.num_soft() as u64 - cost,
            wcnf.num_soft(),
            solution.status
        );
        println!("  {}", solution.stats);
        if let Some(model) = &solution.model {
            println!("  model: {model}");
        }
        assert_eq!(cost, 2, "the paper's Example 2 optimum is 6 of 8");
    }
}
