//! Equivalence checking with the SAT substrate, and what MaxSAT adds
//! when the check fails.
//!
//! 1. Prove a ripple-carry adder equivalent to a majority-gate adder
//!    (miter UNSAT) and inspect the unsatisfiable core.
//! 2. Break one circuit and rerun: the miter becomes SAT and yields a
//!    counterexample input.
//! 3. On the broken miter, MaxSAT reports how close to equivalent the
//!    circuits are (how many miter constraints must be dropped).
//!
//! Run with: `cargo run --example equivalence_checking`

use coremax::{MaxSatSolver, Msu4};
use coremax_circuits::{builders, debug, miter, tseitin};
use coremax_cnf::WcnfFormula;
use coremax_sat::{SolveOutcome, Solver};

fn main() {
    let a = builders::ripple_carry_adder(4);
    let b = builders::majority_adder(4);
    println!(
        "adder A: {} gates; adder B: {} gates (structurally different)",
        a.num_gates(),
        b.num_gates()
    );

    // --- equivalence proof ---
    let m = miter::build_miter(&a, &b).expect("same interface");
    let enc = tseitin::encode(&m);
    let mut solver = Solver::new();
    let ids = solver.add_formula(&enc.formula);
    solver.add_clause([enc.output_lits[0]]);
    match solver.solve() {
        SolveOutcome::Unsat => {
            let core = solver.unsat_core().expect("core after UNSAT");
            println!(
                "EQUIVALENT: miter UNSAT; core uses {} of {} clauses",
                core.len(),
                ids.len() + 1
            );
        }
        other => panic!("expected UNSAT, got {other:?}"),
    }

    // --- break B and find a counterexample ---
    let (broken, gate) = debug::mutate_gate(&b, 99).expect("gates exist");
    let m2 = miter::build_miter(&a, &broken).expect("same interface");
    let enc2 = tseitin::encode(&m2);
    let mut solver2 = Solver::new();
    solver2.add_formula(&enc2.formula);
    solver2.add_clause([enc2.output_lits[0]]);
    match solver2.solve() {
        SolveOutcome::Sat => {
            let model = solver2.model().expect("model after SAT");
            let cex: Vec<bool> = (0..m2.num_inputs())
                .map(|i| model.value(enc2.input_vars[i]).unwrap_or(false))
                .collect();
            println!("NOT equivalent after mutating gate {gate}: counterexample {cex:?}");
            assert_ne!(
                a.eval(&cex),
                broken.eval(&cex),
                "counterexample must differ"
            );
        }
        other => panic!("expected SAT, got {other:?}"),
    }

    // --- MaxSAT view: how inconsistent is the broken miter? ---
    let mut wcnf = WcnfFormula::from_cnf_all_soft(&enc2.formula);
    wcnf.add_hard([enc2.output_lits[0]]);
    let solution = Msu4::v2().solve(&wcnf);
    let cost = solution.cost.expect("optimum");
    println!(
        "MaxSAT: dropping {cost} of {} miter clauses suffices to force a difference",
        wcnf.num_soft()
    );
}
